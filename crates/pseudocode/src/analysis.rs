//! Static analysis: structural validation and `EXC_ACC` footprints.
//!
//! The paper scopes exclusive access by *data*, not by a single global
//! lock: "When one function call executes statements inside an
//! EXC_ACC/END_EXC_ACC block, other function calls **that read or
//! modify the same variables that appear inside the markers** may not
//! execute" (Figure 4). [`exc_footprint`] computes the static name set
//! of a block; the runtime resolves each name to a shared cell (global
//! variable or object field) on block entry.

use crate::ast::*;
use crate::diag::Diagnostic;
use std::collections::BTreeSet;

/// A statically-identified reference that may resolve to a shared cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FootRef {
    /// A bare name: resolves to a local (not shared), an object field of
    /// the receiver, or a global.
    Var(String),
    /// `SELF.field`: a field of the executing method's receiver.
    SelfField(String),
    /// `base.field` where `base` is a variable holding an object.
    VarField(String, String),
}

/// Collect the footprint of an `EXC_ACC` body: every variable or field
/// reference appearing anywhere inside the block (reads and writes are
/// not distinguished — the paper's wording covers both).
pub fn exc_footprint(body: &Block) -> BTreeSet<FootRef> {
    let mut refs = BTreeSet::new();
    for stmt in body {
        stmt_refs(stmt, &mut refs);
    }
    refs
}

fn stmt_refs(stmt: &Stmt, out: &mut BTreeSet<FootRef>) {
    match &stmt.kind {
        StmtKind::Assign { target, value } => {
            lvalue_refs(target, out);
            expr_refs(value, out);
        }
        StmtKind::If { arms, else_ } => {
            for (cond, block) in arms {
                expr_refs(cond, out);
                for s in block {
                    stmt_refs(s, out);
                }
            }
            if let Some(block) = else_ {
                for s in block {
                    stmt_refs(s, out);
                }
            }
        }
        StmtKind::While { cond, body } => {
            expr_refs(cond, out);
            for s in body {
                stmt_refs(s, out);
            }
        }
        StmtKind::For { var, from, to, body } => {
            out.insert(FootRef::Var(var.clone()));
            expr_refs(from, out);
            expr_refs(to, out);
            for s in body {
                stmt_refs(s, out);
            }
        }
        StmtKind::Para { tasks } => {
            for s in tasks {
                stmt_refs(s, out);
            }
        }
        StmtKind::ExcAcc { body } => {
            for s in body {
                stmt_refs(s, out);
            }
        }
        StmtKind::Print { value, .. } => expr_refs(value, out),
        StmtKind::ExprStmt(expr) | StmtKind::Spawn { call: expr } => expr_refs(expr, out),
        StmtKind::Send { msg, to } => {
            expr_refs(msg, out);
            expr_refs(to, out);
        }
        StmtKind::OnReceiving { arms } => {
            for arm in arms {
                for s in &arm.body {
                    stmt_refs(s, out);
                }
            }
        }
        StmtKind::Return(Some(expr)) => expr_refs(expr, out),
        StmtKind::Seq(block) => {
            for s in block {
                stmt_refs(s, out);
            }
        }
        StmtKind::Await { cond } => expr_refs(cond, out),
        StmtKind::Return(None)
        | StmtKind::Wait
        | StmtKind::Notify
        | StmtKind::Break
        | StmtKind::Continue => {}
    }
}

fn lvalue_refs(lvalue: &LValue, out: &mut BTreeSet<FootRef>) {
    match lvalue {
        LValue::Name(name) => {
            out.insert(FootRef::Var(name.clone()));
        }
        LValue::Field(base, field) => field_ref(base, field, out),
        LValue::Index(base, index) => {
            expr_refs(base, out);
            expr_refs(index, out);
        }
    }
}

fn field_ref(base: &Expr, field: &str, out: &mut BTreeSet<FootRef>) {
    match &base.kind {
        ExprKind::SelfRef => {
            out.insert(FootRef::SelfField(field.to_string()));
        }
        ExprKind::Name(name) => {
            out.insert(FootRef::VarField(name.clone(), field.to_string()));
        }
        _ => expr_refs(base, out),
    }
}

fn expr_refs(expr: &Expr, out: &mut BTreeSet<FootRef>) {
    match &expr.kind {
        ExprKind::Name(name) => {
            out.insert(FootRef::Var(name.clone()));
        }
        ExprKind::Field(base, field) => field_ref(base, field, out),
        ExprKind::Index(base, index) => {
            expr_refs(base, out);
            expr_refs(index, out);
        }
        ExprKind::Unary(_, e) => expr_refs(e, out),
        ExprKind::Binary(_, l, r) => {
            expr_refs(l, out);
            expr_refs(r, out);
        }
        ExprKind::List(items) => {
            for item in items {
                expr_refs(item, out);
            }
        }
        ExprKind::Call { callee, args } => {
            if let Callee::Method(base, _) = callee {
                expr_refs(base, out);
            }
            for arg in args {
                expr_refs(arg, out);
            }
        }
        ExprKind::New { args, .. } | ExprKind::Message { args, .. } => {
            for arg in args {
                expr_refs(arg, out);
            }
        }
        ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::SelfRef => {}
    }
}

/// Structural validation performed right after parsing:
///
/// * `WAIT()` / `NOTIFY()` only inside an `EXC_ACC` block (Figure 4:
///   "Only be called inside a EXC_ACC/END_EXC_ACC block").
/// * `EXC_ACC` only inside a function definition (Figure 4: "Only
///   appears within a function definition") and not nested.
/// * `BREAK` / `CONTINUE` only inside loops.
/// * `SELF` only inside class methods.
/// * `ON_RECEIVING` only inside class methods (receivers are objects,
///   Figure 5).
/// * No duplicate function / class / method names.
pub fn validate(program: &Program) -> Vec<Diagnostic> {
    let mut v = Validator::default();

    let mut func_names: BTreeSet<&str> = BTreeSet::new();
    let mut class_names: BTreeSet<&str> = BTreeSet::new();
    for item in &program.items {
        match item {
            Item::Func(f) => {
                if !func_names.insert(&f.name) {
                    v.out.push(Diagnostic::new(
                        format!("function `{}` is defined more than once", f.name),
                        f.span,
                    ));
                }
                v.func(f, false);
            }
            Item::Class(c) => {
                if !class_names.insert(&c.name) {
                    v.out.push(Diagnostic::new(
                        format!("class `{}` is defined more than once", c.name),
                        c.span,
                    ));
                }
                let mut method_names: BTreeSet<&str> = BTreeSet::new();
                for m in &c.methods {
                    if !method_names.insert(&m.name) {
                        v.out.push(Diagnostic::new(
                            format!(
                                "method `{}` is defined more than once in CLASS {}",
                                m.name, c.name
                            ),
                            m.span,
                        ));
                    }
                    v.func(m, true);
                }
                for (field, init) in &c.fields {
                    v.check_expr(init, true);
                    if init.contains_call() {
                        v.out.push(Diagnostic::new(
                            format!(
                                "field initializer for `{}.{field}` may not contain calls",
                                c.name
                            ),
                            init.span,
                        ));
                    }
                }
            }
            Item::Stmt(s) => v.stmt(s, &Ctx::top_level()),
        }
    }
    v.out
}

/// Lexical context flags threaded through validation.
#[derive(Clone, Copy)]
struct Ctx {
    in_function: bool,
    in_method: bool,
    in_exc_acc: bool,
    in_loop: bool,
}

impl Ctx {
    fn top_level() -> Ctx {
        Ctx { in_function: false, in_method: false, in_exc_acc: false, in_loop: false }
    }
}

#[derive(Default)]
struct Validator {
    out: Vec<Diagnostic>,
}

impl Validator {
    fn func(&mut self, f: &FuncDef, is_method: bool) {
        let ctx =
            Ctx { in_function: true, in_method: is_method, in_exc_acc: false, in_loop: false };
        for s in &f.body {
            self.stmt(s, &ctx);
        }
    }

    fn block(&mut self, block: &Block, ctx: &Ctx) {
        for s in block {
            self.stmt(s, ctx);
        }
    }

    fn stmt(&mut self, stmt: &Stmt, ctx: &Ctx) {
        match &stmt.kind {
            StmtKind::Wait | StmtKind::Notify => {
                if !ctx.in_exc_acc {
                    let name =
                        if matches!(stmt.kind, StmtKind::Wait) { "WAIT()" } else { "NOTIFY()" };
                    self.out.push(
                        Diagnostic::new(
                            format!("{name} may only be called inside an EXC_ACC block"),
                            stmt.span,
                        )
                        .with_help("wrap the call in EXC_ACC … END_EXC_ACC"),
                    );
                }
            }
            StmtKind::ExcAcc { body } => {
                if !ctx.in_function {
                    self.out.push(Diagnostic::new(
                        "EXC_ACC may only appear inside a function definition",
                        stmt.span,
                    ));
                }
                if ctx.in_exc_acc {
                    self.out.push(Diagnostic::new("EXC_ACC blocks may not be nested", stmt.span));
                }
                self.block(body, &Ctx { in_exc_acc: true, ..*ctx });
            }
            StmtKind::Break | StmtKind::Continue => {
                if !ctx.in_loop {
                    let name =
                        if matches!(stmt.kind, StmtKind::Break) { "BREAK" } else { "CONTINUE" };
                    self.out.push(Diagnostic::new(format!("{name} outside of a loop"), stmt.span));
                }
            }
            StmtKind::While { cond, body } => {
                self.check_expr(cond, ctx.in_method);
                self.block(body, &Ctx { in_loop: true, ..*ctx });
            }
            StmtKind::For { from, to, body, .. } => {
                self.check_expr(from, ctx.in_method);
                self.check_expr(to, ctx.in_method);
                self.block(body, &Ctx { in_loop: true, ..*ctx });
            }
            StmtKind::If { arms, else_ } => {
                for (cond, block) in arms {
                    self.check_expr(cond, ctx.in_method);
                    self.block(block, ctx);
                }
                if let Some(block) = else_ {
                    self.block(block, ctx);
                }
            }
            StmtKind::Para { tasks } => {
                if ctx.in_exc_acc {
                    self.out.push(Diagnostic::new(
                        "PARA may not appear inside an EXC_ACC block",
                        stmt.span,
                    ));
                }
                self.block(tasks, ctx);
            }
            StmtKind::OnReceiving { arms } => {
                if !ctx.in_method {
                    self.out.push(Diagnostic::new(
                        "ON_RECEIVING may only appear inside a class method (a receiver object)",
                        stmt.span,
                    ));
                }
                for arm in arms {
                    self.block(&arm.body, ctx);
                }
            }
            StmtKind::Assign { target, value } => {
                if let LValue::Field(base, _) | LValue::Index(base, _) = target {
                    self.check_expr(base, ctx.in_method);
                }
                if let LValue::Index(_, index) = target {
                    self.check_expr(index, ctx.in_method);
                }
                self.check_expr(value, ctx.in_method);
            }
            StmtKind::Print { value, .. } => self.check_expr(value, ctx.in_method),
            StmtKind::ExprStmt(e) | StmtKind::Spawn { call: e } => {
                self.check_expr(e, ctx.in_method)
            }
            StmtKind::Send { msg, to } => {
                self.check_expr(msg, ctx.in_method);
                self.check_expr(to, ctx.in_method);
            }
            StmtKind::Return(value) => {
                if !ctx.in_function {
                    self.out.push(Diagnostic::new("RETURN outside of a function", stmt.span));
                }
                if let Some(e) = value {
                    self.check_expr(e, ctx.in_method);
                }
            }
            StmtKind::Seq(block) => self.block(block, ctx),
            StmtKind::Await { cond } => {
                self.check_expr(cond, ctx.in_method);
                // The runtime re-evaluates an AWAIT condition every
                // time the task could be resumed, so it must be free
                // of side effects — same rule as field initializers.
                if cond.contains_call() {
                    self.out.push(
                        Diagnostic::new("AWAIT condition may not contain calls", cond.span)
                            .with_help(
                                "assign the call result to a variable and AWAIT on the variable",
                            ),
                    );
                }
                // Awaiting while holding the global EXC_ACC lock
                // would block every task that could make the
                // condition true: a guaranteed deadlock.
                if ctx.in_exc_acc {
                    self.out.push(
                        Diagnostic::new("AWAIT may not appear inside an EXC_ACC block", stmt.span)
                            .with_help("use WAIT()/NOTIFY() inside EXC_ACC, AWAIT outside it"),
                    );
                }
            }
        }
    }

    /// Expression-level checks: `SELF` requires a method context.
    fn check_expr(&mut self, expr: &Expr, in_method: bool) {
        match &expr.kind {
            ExprKind::SelfRef if !in_method => {
                self.out.push(Diagnostic::new(
                    "SELF may only be used inside a class method",
                    expr.span,
                ));
            }
            ExprKind::Unary(_, e) => self.check_expr(e, in_method),
            ExprKind::Binary(_, l, r) => {
                self.check_expr(l, in_method);
                self.check_expr(r, in_method);
            }
            ExprKind::List(items) => {
                for i in items {
                    self.check_expr(i, in_method);
                }
            }
            ExprKind::Call { callee, args } => {
                if let Callee::Method(base, _) = callee {
                    self.check_expr(base, in_method);
                }
                for a in args {
                    self.check_expr(a, in_method);
                }
            }
            ExprKind::Field(base, _) => self.check_expr(base, in_method),
            ExprKind::Index(base, index) => {
                self.check_expr(base, in_method);
                self.check_expr(index, in_method);
            }
            ExprKind::New { args, .. } | ExprKind::Message { args, .. } => {
                for a in args {
                    self.check_expr(a, in_method);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn footprint_of_figure4_block() {
        let program = parse(
            "DEFINE changeX(diff)\n    EXC_ACC\n        WHILE x + diff < 0\n            WAIT()\n        ENDWHILE\n        x = x + diff\n        NOTIFY()\n    END_EXC_ACC\nENDDEF\n",
        )
        .unwrap();
        let f = program.function("changeX").unwrap();
        let StmtKind::ExcAcc { body } = &f.body[0].kind else { panic!() };
        let refs = exc_footprint(body);
        assert!(refs.contains(&FootRef::Var("x".into())));
        assert!(refs.contains(&FootRef::Var("diff".into())));
        assert_eq!(refs.len(), 2);
    }

    #[test]
    fn footprint_includes_self_and_var_fields() {
        let program = parse(
            "CLASS C\n    n = 0\n    DEFINE m(other)\n        EXC_ACC\n            SELF.n = other.n + 1\n        END_EXC_ACC\n    ENDDEF\nENDCLASS\n",
        )
        .unwrap();
        let class = program.class("C").unwrap();
        let StmtKind::ExcAcc { body } = &class.method("m").unwrap().body[0].kind else { panic!() };
        let refs = exc_footprint(body);
        assert!(refs.contains(&FootRef::SelfField("n".into())));
        assert!(refs.contains(&FootRef::VarField("other".into(), "n".into())));
    }

    #[test]
    fn wait_outside_exc_acc_is_rejected() {
        let err = parse("DEFINE f()\n    WAIT()\nENDDEF\n").unwrap_err();
        assert!(err.to_string().contains("EXC_ACC"), "{err}");
    }

    #[test]
    fn exc_acc_at_top_level_is_rejected() {
        let err = parse("EXC_ACC\n    x = 1\nEND_EXC_ACC\n").unwrap_err();
        assert!(err.to_string().contains("function definition"), "{err}");
    }

    #[test]
    fn nested_exc_acc_is_rejected() {
        let err = parse(
            "DEFINE f()\n    EXC_ACC\n        EXC_ACC\n            x = 1\n        END_EXC_ACC\n    END_EXC_ACC\nENDDEF\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("nested"), "{err}");
    }

    #[test]
    fn await_condition_may_not_contain_calls() {
        let err = parse("DEFINE f()\n    AWAIT g() == 1\nENDDEF\n").unwrap_err();
        assert!(err.to_string().contains("AWAIT condition"), "{err}");
        assert!(parse("AWAIT flag == 1\n").is_ok());
        assert!(parse("AWAIT\n").is_ok());
    }

    #[test]
    fn await_inside_exc_acc_is_rejected() {
        let err = parse("DEFINE f()\n    EXC_ACC\n        AWAIT x == 0\n    END_EXC_ACC\nENDDEF\n")
            .unwrap_err();
        assert!(err.to_string().contains("EXC_ACC"), "{err}");
    }

    #[test]
    fn await_condition_reads_are_in_footprints() {
        let program = parse("AWAIT x == 0 AND done\n").unwrap();
        let body: Vec<Stmt> = program.main_body().into_iter().cloned().collect();
        let refs = exc_footprint(&body);
        assert!(refs.contains(&FootRef::Var("x".into())));
        assert!(refs.contains(&FootRef::Var("done".into())));
    }

    #[test]
    fn break_outside_loop_is_rejected() {
        assert!(parse("BREAK\n").is_err());
        assert!(parse("WHILE TRUE\n    BREAK\nENDWHILE\n").is_ok());
    }

    #[test]
    fn self_outside_method_is_rejected() {
        let err = parse("x = SELF.n\n").unwrap_err();
        assert!(err.to_string().contains("SELF"), "{err}");
    }

    #[test]
    fn on_receiving_outside_method_is_rejected() {
        let err = parse(
            "DEFINE f()\n    ON_RECEIVING\n        MESSAGE.a(x)\n            PRINT x\nENDDEF\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("class method"), "{err}");
    }

    #[test]
    fn duplicate_definitions_are_rejected() {
        assert!(parse("DEFINE f()\nENDDEF\nDEFINE f()\nENDDEF\n").is_err());
        assert!(parse("CLASS A\nENDCLASS\nCLASS A\nENDCLASS\n").is_err());
        assert!(parse(
            "CLASS A\n    DEFINE m()\n    ENDDEF\n    DEFINE m()\n    ENDDEF\nENDCLASS\n"
        )
        .is_err());
    }

    #[test]
    fn return_at_top_level_is_rejected() {
        assert!(parse("RETURN 3\n").is_err());
    }

    #[test]
    fn para_inside_exc_acc_is_rejected() {
        let err = parse(
            "DEFINE f()\n    EXC_ACC\n        PARA\n            g()\n        ENDPARA\n    END_EXC_ACC\nENDDEF\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("PARA may not"), "{err}");
    }
}
