//! Recursive-descent parser with per-line error recovery.

use crate::ast::*;
use crate::diag::{Diagnostic, ParseError};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parse a token stream (as produced by [`crate::lexer::lex`]) into a
/// [`Program`]. `source` is used only for rendering diagnostics.
pub fn parse_tokens(tokens: &[Token], source: &str) -> Result<Program, ParseError> {
    let mut parser = Parser { tokens, pos: 0, diagnostics: Vec::new() };
    let program = parser.program();
    let mut diagnostics = parser.diagnostics;
    diagnostics.extend(crate::analysis::validate(&program));
    if diagnostics.is_empty() {
        Ok(program)
    } else {
        let _ = source;
        Err(ParseError { diagnostics })
    }
}

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
    diagnostics: Vec<Diagnostic>,
}

/// Statement-level terminators: tokens that end an enclosing block.
fn is_block_end(kind: &TokenKind) -> bool {
    use TokenKind::*;
    matches!(
        kind,
        EndIf
            | EndWhile
            | EndFor
            | EndDef
            | EndClass
            | EndPara
            | EndExcAcc
            | EndReceiving
            | Else
            | Message
            | Eof
    )
}

impl<'t> Parser<'t> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> &Token {
        let token = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Span, Diagnostic> {
        if self.peek() == &kind {
            Ok(self.bump().span)
        } else {
            Err(Diagnostic::new(
                format!("expected {}, found {}", kind.describe(), self.peek().describe()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(Diagnostic::new(
                format!("expected identifier, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    /// Record `diag` and skip to the start of the next line so parsing
    /// can continue (error recovery).
    fn recover(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
        while !matches!(self.peek(), TokenKind::Newline | TokenKind::Eof) {
            self.bump();
        }
        self.skip_newlines();
    }

    // ----- program structure ------------------------------------------------

    fn program(&mut self) -> Program {
        let mut items = Vec::new();
        self.skip_newlines();
        while !matches!(self.peek(), TokenKind::Eof) {
            match self.peek() {
                TokenKind::Class => match self.class_def() {
                    Ok(class) => items.push(Item::Class(class)),
                    Err(diag) => self.recover(diag),
                },
                TokenKind::Define => match self.func_def() {
                    Ok(func) => items.push(Item::Func(func)),
                    Err(diag) => self.recover(diag),
                },
                _ => match self.stmt_line() {
                    Ok(stmt) => items.push(Item::Stmt(stmt)),
                    Err(diag) => self.recover(diag),
                },
            }
            self.skip_newlines();
        }
        Program { items }
    }

    fn class_def(&mut self) -> Result<ClassDef, Diagnostic> {
        let start = self.expect(TokenKind::Class)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::Newline)?;
        self.skip_newlines();
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        loop {
            match self.peek() {
                TokenKind::EndClass => break,
                TokenKind::Eof => {
                    return Err(Diagnostic::new(
                        format!("CLASS {name} is missing its ENDCLASS"),
                        start,
                    ));
                }
                TokenKind::Define => methods.push(self.func_def()?),
                TokenKind::Ident(_) => {
                    // A field initializer: `name = expr`.
                    let (field, fspan) = self.expect_ident()?;
                    self.expect(TokenKind::Assign).map_err(|d| {
                        d.with_help("class bodies may only contain field initializers and DEFINE")
                    })?;
                    let init = self.expr()?;
                    self.expect(TokenKind::Newline)?;
                    if fields.iter().any(|(existing, _)| existing == &field) {
                        return Err(Diagnostic::new(
                            format!("field `{field}` is declared twice in CLASS {name}"),
                            fspan,
                        ));
                    }
                    fields.push((field, init));
                }
                other => {
                    return Err(Diagnostic::new(
                        format!(
                            "expected a field initializer, DEFINE, or ENDCLASS in CLASS body, \
                             found {}",
                            other.describe()
                        ),
                        self.span(),
                    ));
                }
            }
            self.skip_newlines();
        }
        let end = self.expect(TokenKind::EndClass)?;
        Ok(ClassDef { name, fields, methods, span: start.merge(end) })
    }

    fn func_def(&mut self) -> Result<FuncDef, Diagnostic> {
        let start = self.expect(TokenKind::Define)?;
        let (name, _) = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    let (param, pspan) = self.expect_ident()?;
                    if params.contains(&param) {
                        return Err(Diagnostic::new(
                            format!("duplicate parameter `{param}` in DEFINE {name}"),
                            pspan,
                        ));
                    }
                    params.push(param);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        self.expect(TokenKind::Newline)?;
        let body = self.block()?;
        let end = self.expect(TokenKind::EndDef)?;
        self.skip_newlines();
        Ok(FuncDef { name, params, body, span: start.merge(end) })
    }

    /// Parse statements until a block terminator (not consumed).
    fn block(&mut self) -> Result<Block, Diagnostic> {
        let mut stmts = Vec::new();
        self.skip_newlines();
        while !is_block_end(self.peek()) {
            stmts.push(self.stmt_line()?);
            self.skip_newlines();
        }
        Ok(stmts)
    }

    fn stmt_line(&mut self) -> Result<Stmt, Diagnostic> {
        let stmt = self.stmt()?;
        // Simple statements must end the line. A block terminator is
        // also acceptable here because constructs without an explicit
        // end token (ON_RECEIVING without END_RECEIVING) swallow the
        // trailing newlines of their last arm.
        if !matches!(self.peek(), TokenKind::Eof) && !is_block_end(self.peek()) {
            self.expect(TokenKind::Newline)?;
        }
        Ok(stmt)
    }

    // ----- statements -------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Para => self.para_stmt(),
            TokenKind::ExcAcc => self.exc_acc_stmt(),
            TokenKind::OnReceiving => self.on_receiving_stmt(),
            TokenKind::Wait => {
                self.bump();
                self.empty_parens()?;
                Ok(Stmt::new(StmtKind::Wait, span))
            }
            TokenKind::Notify => {
                self.bump();
                self.empty_parens()?;
                Ok(Stmt::new(StmtKind::Notify, span))
            }
            TokenKind::Print => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::new(StmtKind::Print { value, newline: false }, span))
            }
            TokenKind::PrintLn => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::new(StmtKind::Print { value, newline: true }, span))
            }
            TokenKind::Send => self.send_stmt(),
            TokenKind::Spawn => {
                self.bump();
                let call = self.expr()?;
                if !matches!(call.kind, ExprKind::Call { .. }) {
                    return Err(Diagnostic::new(
                        "SPAWN expects a function or method call",
                        call.span,
                    ));
                }
                Ok(Stmt::new(StmtKind::Spawn { call }, span))
            }
            TokenKind::Await => {
                self.bump();
                // A bare `AWAIT` is a pure yield point: `AWAIT TRUE`.
                let cond = if matches!(self.peek(), TokenKind::Newline | TokenKind::Eof) {
                    Expr::new(ExprKind::Bool(true), span)
                } else {
                    self.expr()?
                };
                Ok(Stmt::new(StmtKind::Await { cond }, span))
            }
            TokenKind::Return => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Newline | TokenKind::Eof) {
                    None
                } else {
                    Some(self.expr()?)
                };
                Ok(Stmt::new(StmtKind::Return(value), span))
            }
            TokenKind::Break => {
                self.bump();
                Ok(Stmt::new(StmtKind::Break, span))
            }
            TokenKind::Continue => {
                self.bump();
                Ok(Stmt::new(StmtKind::Continue, span))
            }
            _ => self.assign_or_call(),
        }
    }

    fn empty_parens(&mut self) -> Result<(), Diagnostic> {
        self.expect(TokenKind::LParen)?;
        self.expect(TokenKind::RParen)?;
        Ok(())
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::If)?;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        self.expect(TokenKind::Then)?;
        self.expect(TokenKind::Newline)?;
        arms.push((cond, self.block()?));
        let mut else_ = None;
        loop {
            if self.eat(&TokenKind::Else) {
                if self.eat(&TokenKind::If) {
                    // ELSE IF: a new conditional arm.
                    let cond = self.expr()?;
                    self.expect(TokenKind::Then)?;
                    self.expect(TokenKind::Newline)?;
                    arms.push((cond, self.block()?));
                } else {
                    self.expect(TokenKind::Newline)?;
                    else_ = Some(self.block()?);
                    break;
                }
            } else {
                break;
            }
        }
        let end = self.expect(TokenKind::EndIf)?;
        Ok(Stmt::new(StmtKind::If { arms, else_ }, start.merge(end)))
    }

    fn while_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::While)?;
        let cond = self.expr()?;
        self.expect(TokenKind::Newline)?;
        let body = self.block()?;
        let end = self.expect(TokenKind::EndWhile)?;
        Ok(Stmt::new(StmtKind::While { cond, body }, start.merge(end)))
    }

    fn for_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::For)?;
        let (var, _) = self.expect_ident()?;
        self.expect(TokenKind::Assign)?;
        let from = self.expr()?;
        self.expect(TokenKind::To)?;
        let to = self.expr()?;
        self.expect(TokenKind::Newline)?;
        let body = self.block()?;
        let end = self.expect(TokenKind::EndFor)?;
        Ok(Stmt::new(StmtKind::For { var, from, to, body }, start.merge(end)))
    }

    fn para_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Para)?;
        self.expect(TokenKind::Newline)?;
        self.skip_newlines();
        let mut tasks = Vec::new();
        while !matches!(self.peek(), TokenKind::EndPara | TokenKind::Eof) {
            tasks.push(self.stmt_line()?);
            self.skip_newlines();
        }
        let end = self.expect(TokenKind::EndPara)?;
        Ok(Stmt::new(StmtKind::Para { tasks }, start.merge(end)))
    }

    fn exc_acc_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::ExcAcc)?;
        self.expect(TokenKind::Newline)?;
        let body = self.block()?;
        let end = self.expect(TokenKind::EndExcAcc)?;
        Ok(Stmt::new(StmtKind::ExcAcc { body }, start.merge(end)))
    }

    fn send_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::Send)?;
        self.expect(TokenKind::LParen)?;
        let msg = self.expr()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Dot)?;
        self.expect(TokenKind::To).map_err(|d| {
            d.with_help("the send statement is written `Send(message).To(receiver)`")
        })?;
        self.expect(TokenKind::LParen)?;
        let to = self.expr()?;
        let end = self.expect(TokenKind::RParen)?;
        Ok(Stmt::new(StmtKind::Send { msg, to }, start.merge(end)))
    }

    fn on_receiving_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let start = self.expect(TokenKind::OnReceiving)?;
        self.expect(TokenKind::Newline)?;
        self.skip_newlines();
        let mut arms: Vec<ReceiveArm> = Vec::new();
        while matches!(self.peek(), TokenKind::Message) {
            let arm_start = self.bump().span; // MESSAGE
            self.expect(TokenKind::Dot)?;
            let (msg_name, nspan) = self.expect_ident()?;
            let mut params = Vec::new();
            self.expect(TokenKind::LParen)?;
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    let (param, _) = self.expect_ident()?;
                    params.push(param);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Newline)?;
            let body = self.block()?;
            if arms.iter().any(|a| a.msg_name == msg_name) {
                return Err(Diagnostic::new(
                    format!("duplicate ON_RECEIVING arm for MESSAGE.{msg_name}"),
                    nspan,
                ));
            }
            arms.push(ReceiveArm { msg_name, params, body, span: arm_start });
        }
        if arms.is_empty() {
            return Err(Diagnostic::new(
                "ON_RECEIVING requires at least one MESSAGE.name(…) arm",
                start,
            ));
        }
        // The explicit END_RECEIVING terminator is optional; the paper's
        // Figure 5 ends the statement at ENDDEF.
        let end =
            if matches!(self.peek(), TokenKind::EndReceiving) { self.bump().span } else { start };
        Ok(Stmt::new(StmtKind::OnReceiving { arms }, start.merge(end)))
    }

    fn assign_or_call(&mut self) -> Result<Stmt, Diagnostic> {
        let expr = self.expr()?;
        let span = expr.span;
        if self.eat(&TokenKind::Assign) {
            let target = Self::expr_to_lvalue(expr)?;
            let value = self.expr()?;
            Ok(Stmt::new(StmtKind::Assign { target, value }, span.merge(self.prev_span())))
        } else {
            match expr.kind {
                ExprKind::Call { .. } | ExprKind::New { .. } => {
                    Ok(Stmt::new(StmtKind::ExprStmt(expr), span))
                }
                _ => Err(Diagnostic::new(
                    "expected a statement; a bare expression may only be a call",
                    span,
                )
                .with_help("did you mean an assignment `name = expression`?")),
            }
        }
    }

    fn expr_to_lvalue(expr: Expr) -> Result<LValue, Diagnostic> {
        match expr.kind {
            ExprKind::Name(name) => Ok(LValue::Name(name)),
            ExprKind::Field(obj, field) => Ok(LValue::Field(obj, field)),
            ExprKind::Index(obj, index) => Ok(LValue::Index(obj, index)),
            _ => Err(Diagnostic::new("invalid assignment target", expr.span)),
        }
    }

    // ----- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, Diagnostic> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Or => BinOp::Or,
                TokenKind::And => BinOp::And,
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            if op.precedence() <= min_prec {
                break;
            }
            self.bump();
            let right = self.binary_expr(op.precedence())?;
            let span = left.span.merge(right.span);
            left = Expr::new(ExprKind::Binary(op, Box::new(left), Box::new(right)), span);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = span.merge(operand.span);
                Ok(Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(operand)), span))
            }
            TokenKind::Not => {
                self.bump();
                let operand = self.unary_expr()?;
                let span = span.merge(operand.span);
                Ok(Expr::new(ExprKind::Unary(UnOp::Not, Box::new(operand)), span))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut expr = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    // `.To` only appears in Send statements, but a method
                    // named with any keyword is rejected here for clarity.
                    let (name, nspan) = self.expect_ident().map_err(|d| {
                        d.with_help("only identifiers may follow `.` in an expression")
                    })?;
                    if self.eat(&TokenKind::LParen) {
                        let args = self.call_args()?;
                        let span = expr.span.merge(self.prev_span());
                        expr = Expr::new(
                            ExprKind::Call { callee: Callee::Method(Box::new(expr), name), args },
                            span,
                        );
                    } else {
                        let span = expr.span.merge(nspan);
                        expr = Expr::new(ExprKind::Field(Box::new(expr), name), span);
                    }
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.expr()?;
                    let end = self.expect(TokenKind::RBracket)?;
                    let span = expr.span.merge(end);
                    expr = Expr::new(ExprKind::Index(Box::new(expr), Box::new(index)), span);
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn primary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(v), span))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::Float(v), span))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), span))
            }
            TokenKind::SelfKw => {
                self.bump();
                Ok(Expr::new(ExprKind::SelfRef, span))
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if !matches!(self.peek(), TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(TokenKind::RBracket)?;
                Ok(Expr::new(ExprKind::List(items), span.merge(end)))
            }
            TokenKind::New => {
                self.bump();
                let (class, _) = self.expect_ident()?;
                self.expect(TokenKind::LParen)?;
                let args = self.call_args()?;
                Ok(Expr::new(ExprKind::New { class, args }, span.merge(self.prev_span())))
            }
            TokenKind::Message => {
                self.bump();
                self.expect(TokenKind::Dot)?;
                let (name, _) = self.expect_ident()?;
                self.expect(TokenKind::LParen)?;
                let args = self.call_args()?;
                Ok(Expr::new(ExprKind::Message { name, args }, span.merge(self.prev_span())))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let args = self.call_args()?;
                    Ok(Expr::new(
                        ExprKind::Call { callee: Callee::Name(name), args },
                        span.merge(self.prev_span()),
                    ))
                } else {
                    Ok(Expr::new(ExprKind::Name(name), span))
                }
            }
            other => Err(Diagnostic::new(
                format!("expected an expression, found {}", other.describe()),
                span,
            )),
        }
    }

    /// Parse a comma-separated argument list; the opening `(` has been
    /// consumed, and this consumes the closing `)`.
    fn call_args(&mut self) -> Result<Vec<Expr>, Diagnostic> {
        let mut args = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn figure1_assignments() {
        let program =
            parse("total = 0\nname = \"John Smith\"\ncondition = True\nheight = 3.3\n").unwrap();
        assert_eq!(program.main_body().len(), 4);
        match &program.main_body()[3].kind {
            StmtKind::Assign { target: LValue::Name(name), value } => {
                assert_eq!(name, "height");
                assert_eq!(value.kind, ExprKind::Float(3.3));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn await_with_and_without_condition() {
        let program = parse("AWAIT x == 0\nAWAIT\n").unwrap();
        let main = program.main_body();
        match &main[0].kind {
            StmtKind::Await { cond } => {
                assert!(matches!(cond.kind, ExprKind::Binary(..)), "cond is a comparison")
            }
            other => panic!("unexpected stmt {other:?}"),
        }
        match &main[1].kind {
            StmtKind::Await { cond } => assert_eq!(cond.kind, ExprKind::Bool(true)),
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn figure2_conditional_chain() {
        let program = parse(
            r#"
IF testScore >= 90 THEN
    PRINTLN "A"
ELSE IF testScore >= 80 THEN
    PRINTLN "B"
ELSE IF testScore >= 70 THEN
    PRINTLN "C"
ELSE
    PRINTLN "F"
ENDIF
"#,
        )
        .unwrap();
        let main = program.main_body();
        match &main[0].kind {
            StmtKind::If { arms, else_ } => {
                assert_eq!(arms.len(), 3);
                assert!(else_.is_some());
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn figure3_para_with_calls() {
        let program = parse(
            r#"
DEFINE print()
    PRINT "hi"
    PRINT "there"
ENDDEF

PARA
    print()
    PRINT "world"
ENDPARA
"#,
        )
        .unwrap();
        assert!(program.function("print").is_some());
        match &program.main_body()[0].kind {
            StmtKind::Para { tasks } => assert_eq!(tasks.len(), 2),
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn figure4_wait_notify() {
        let program = parse(
            r#"
x = 10

DEFINE changeX(diff)
    EXC_ACC
        WHILE x + diff < 0
            WAIT()
        ENDWHILE
        x = x + diff
        NOTIFY()
    END_EXC_ACC
ENDDEF

PARA
    changeX(-11)
    changeX(1)
ENDPARA

PRINTLN x
"#,
        )
        .unwrap();
        let f = program.function("changeX").unwrap();
        match &f.body[0].kind {
            StmtKind::ExcAcc { body } => {
                assert!(matches!(body[0].kind, StmtKind::While { .. }));
                assert!(matches!(body[2].kind, StmtKind::Notify));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn figure5_receiver_class() {
        let program = parse(
            r#"
CLASS Receiver
    DEFINE receive()
        ON_RECEIVING
            MESSAGE.h(var)
                PRINT var
            MESSAGE.w(var)
                PRINTLN var
    ENDDEF
ENDCLASS

m1 = MESSAGE.h("hello")
m2 = MESSAGE.w("world")

r1 = new Receiver()
r1.receive()

Send(m1).To(r1)
Send(m2).To(r1)
"#,
        )
        .unwrap();
        let class = program.class("Receiver").unwrap();
        assert!(class.is_receiver());
        let receive = class.method("receive").unwrap();
        match &receive.body[0].kind {
            StmtKind::OnReceiving { arms } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(arms[0].msg_name, "h");
                assert_eq!(arms[1].params, vec!["var".to_string()]);
            }
            other => panic!("unexpected stmt {other:?}"),
        }
        let main = program.main_body();
        assert!(matches!(main.last().unwrap().kind, StmtKind::Send { .. }));
    }

    #[test]
    fn paper_figures_6_7_end_para_spelling() {
        let program =
            parse("PARA\n    redCarA.run()\n    redCarB.run()\n    blueCarA.run()\nEND PARA\n")
                .unwrap();
        match &program.main_body()[0].kind {
            StmtKind::Para { tasks } => assert_eq!(tasks.len(), 3),
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn class_with_fields() {
        let program = parse(
            r#"
CLASS Bridge
    carsOnBridge = 0
    direction = "none"

    DEFINE enter(dir)
        carsOnBridge = carsOnBridge + 1
        direction = dir
    ENDDEF
ENDCLASS
"#,
        )
        .unwrap();
        let class = program.class("Bridge").unwrap();
        assert_eq!(class.fields.len(), 2);
        assert_eq!(class.methods.len(), 1);
        assert!(!class.is_receiver());
    }

    #[test]
    fn for_loop_and_lists() {
        let program = parse(
            "items = [1, 2, 3]\nsum = 0\nFOR i = 0 TO LEN(items) - 1\n    sum = sum + items[i]\nENDFOR\n",
        )
        .unwrap();
        match &program.main_body()[2].kind {
            StmtKind::For { var, .. } => assert_eq!(var, "i"),
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn precedence_shapes_the_tree() {
        let program = parse("r = 1 + 2 * 3 < 4 AND NOT done\n").unwrap();
        // Expect: ((1 + (2*3)) < 4) AND (NOT done)
        match &program.main_body()[0].kind {
            StmtKind::Assign { value, .. } => match &value.kind {
                ExprKind::Binary(BinOp::And, l, r) => {
                    assert!(matches!(l.kind, ExprKind::Binary(BinOp::Lt, _, _)));
                    assert!(matches!(r.kind, ExprKind::Unary(UnOp::Not, _)));
                }
                other => panic!("unexpected expr {other:?}"),
            },
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn error_recovery_reports_multiple_diagnostics() {
        let err = parse("x = \ny = 3 +\nz = 1\nIF THEN\nENDIF\n").unwrap_err();
        assert!(err.diagnostics.len() >= 2, "{err}");
    }

    #[test]
    fn missing_endif_is_an_error() {
        assert!(parse("IF x > 0 THEN\n    y = 1\n").is_err());
    }

    #[test]
    fn bare_expression_statement_is_rejected() {
        let err = parse("x + 1\n").unwrap_err();
        assert!(err.to_string().contains("bare expression"), "{err}");
    }

    #[test]
    fn assignment_to_call_is_rejected() {
        assert!(parse("f(x) = 3\n").is_err());
    }

    #[test]
    fn field_and_index_assignment_targets() {
        let program = parse("obj.count = 1\nitems[0] = 2\n").unwrap();
        let main = program.main_body();
        assert!(matches!(
            &main[0].kind,
            StmtKind::Assign { target: LValue::Field(_, f), .. } if f == "count"
        ));
        assert!(matches!(&main[1].kind, StmtKind::Assign { target: LValue::Index(_, _), .. }));

        // SELF is only legal inside a class method.
        let program = parse(
            "CLASS C\n    x = 0\n    DEFINE set(v)\n        SELF.x = v\n    ENDDEF\nENDCLASS\n",
        )
        .unwrap();
        let method = program.class("C").unwrap().method("set").unwrap();
        assert!(matches!(
            &method.body[0].kind,
            StmtKind::Assign { target: LValue::Field(obj, _), .. }
                if matches!(obj.kind, ExprKind::SelfRef)
        ));
    }

    #[test]
    fn duplicate_receive_arm_is_rejected() {
        let err = parse(
            "DEFINE r()\n    ON_RECEIVING\n        MESSAGE.a(x)\n            PRINT x\n        MESSAGE.a(y)\n            PRINT y\nENDDEF\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate ON_RECEIVING"), "{err}");
    }

    #[test]
    fn spawn_statement() {
        let program = parse("SPAWN worker.run()\n").unwrap();
        assert!(matches!(program.main_body()[0].kind, StmtKind::Spawn { .. }));
        assert!(parse("SPAWN 17\n").is_err());
    }
}
