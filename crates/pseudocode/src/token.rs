//! Token definitions for the pseudocode lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token: kind plus the span it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Every terminal of the pseudocode grammar.
///
/// Keyword spellings follow the paper exactly: control keywords are
/// upper-case (`IF`, `PARA`, `EXC_ACC`, …) while the message-passing
/// forms use the mixed-case spellings shown in Figure 5 (`Send`, `To`,
/// `MESSAGE`, `new`).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and names.
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),

    // Control flow.
    If,
    Then,
    Else,
    EndIf,
    While,
    EndWhile,
    For,
    To,
    EndFor,
    Break,
    Continue,
    Return,

    // Definitions.
    Define,
    EndDef,
    Class,
    EndClass,

    // Concurrency.
    Para,
    EndPara,
    ExcAcc,
    EndExcAcc,
    Wait,
    Notify,
    Spawn,
    Await,

    // Message passing.
    Message,
    Send,
    OnReceiving,
    EndReceiving,

    // Output.
    Print,
    PrintLn,

    // Values.
    True,
    False,
    New,
    SelfKw,

    // Logical operators.
    And,
    Or,
    Not,

    // Punctuation / operators.
    Assign,   // =
    Eq,       // ==
    Ne,       // !=
    Lt,       // <
    Le,       // <=
    Gt,       // >
    Ge,       // >=
    Plus,     // +
    Minus,    // -
    Star,     // *
    Slash,    // /
    Percent,  // %
    LParen,   // (
    RParen,   // )
    LBracket, // [
    RBracket, // ]
    Comma,    // ,
    Dot,      // .

    /// End of a logical line. Statements are newline-terminated.
    Newline,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup. Returns `None` for ordinary identifiers.
    ///
    /// The paper writes a few multi-word keywords with internal spaces
    /// or underscores inconsistently (`END PARA` vs `ENDPARA`,
    /// `END_EXC_ACC`); the lexer normalizes those before calling this.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "IF" => If,
            "THEN" => Then,
            "ELSE" => Else,
            "ENDIF" => EndIf,
            "WHILE" => While,
            "ENDWHILE" => EndWhile,
            "FOR" => For,
            "TO" | "To" => To,
            "ENDFOR" => EndFor,
            "BREAK" => Break,
            "CONTINUE" => Continue,
            "RETURN" => Return,
            "DEFINE" => Define,
            "ENDDEF" => EndDef,
            "CLASS" => Class,
            "ENDCLASS" => EndClass,
            "PARA" => Para,
            "ENDPARA" => EndPara,
            "EXC_ACC" => ExcAcc,
            "END_EXC_ACC" => EndExcAcc,
            "WAIT" => Wait,
            "NOTIFY" => Notify,
            "SPAWN" => Spawn,
            "AWAIT" => Await,
            "MESSAGE" => Message,
            "Send" | "SEND" => Send,
            "ON_RECEIVING" => OnReceiving,
            "END_RECEIVING" => EndReceiving,
            "PRINT" => Print,
            "PRINTLN" => PrintLn,
            "TRUE" | "True" => True,
            "FALSE" | "False" => False,
            "new" | "NEW" => New,
            "SELF" => SelfKw,
            "AND" => And,
            "OR" => Or,
            "NOT" => Not,
            _ => return None,
        })
    }

    /// A short human-readable name used in parse-error messages.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(name) => format!("identifier `{name}`"),
            Int(v) => format!("integer `{v}`"),
            Float(v) => format!("number `{v}`"),
            Str(s) => format!("string {s:?}"),
            Newline => "end of line".to_string(),
            Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The canonical source spelling of a fixed token (keywords and
    /// punctuation). Literal-carrying tokens return a placeholder.
    pub fn lexeme(&self) -> &'static str {
        use TokenKind::*;
        match self {
            Ident(_) => "<ident>",
            Int(_) => "<int>",
            Float(_) => "<float>",
            Str(_) => "<string>",
            If => "IF",
            Then => "THEN",
            Else => "ELSE",
            EndIf => "ENDIF",
            While => "WHILE",
            EndWhile => "ENDWHILE",
            For => "FOR",
            To => "TO",
            EndFor => "ENDFOR",
            Break => "BREAK",
            Continue => "CONTINUE",
            Return => "RETURN",
            Define => "DEFINE",
            EndDef => "ENDDEF",
            Class => "CLASS",
            EndClass => "ENDCLASS",
            Para => "PARA",
            EndPara => "ENDPARA",
            ExcAcc => "EXC_ACC",
            EndExcAcc => "END_EXC_ACC",
            Wait => "WAIT",
            Notify => "NOTIFY",
            Spawn => "SPAWN",
            Await => "AWAIT",
            Message => "MESSAGE",
            Send => "Send",
            OnReceiving => "ON_RECEIVING",
            EndReceiving => "END_RECEIVING",
            Print => "PRINT",
            PrintLn => "PRINTLN",
            True => "TRUE",
            False => "FALSE",
            New => "new",
            SelfKw => "SELF",
            And => "AND",
            Or => "OR",
            Not => "NOT",
            Assign => "=",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            Comma => ",",
            Dot => ".",
            Newline => "\\n",
            Eof => "<eof>",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip_through_lexeme() {
        for word in [
            "IF",
            "THEN",
            "ELSE",
            "ENDIF",
            "WHILE",
            "ENDWHILE",
            "FOR",
            "ENDFOR",
            "DEFINE",
            "ENDDEF",
            "CLASS",
            "ENDCLASS",
            "PARA",
            "ENDPARA",
            "EXC_ACC",
            "END_EXC_ACC",
            "WAIT",
            "NOTIFY",
            "SPAWN",
            "AWAIT",
            "MESSAGE",
            "ON_RECEIVING",
            "END_RECEIVING",
            "PRINT",
            "PRINTLN",
            "TRUE",
            "FALSE",
            "SELF",
            "AND",
            "OR",
            "NOT",
            "RETURN",
            "BREAK",
            "CONTINUE",
        ] {
            let kind = TokenKind::keyword(word).unwrap_or_else(|| panic!("{word} is a keyword"));
            assert_eq!(kind.lexeme(), word, "lexeme of {word}");
        }
    }

    #[test]
    fn mixed_case_message_keywords() {
        assert_eq!(TokenKind::keyword("Send"), Some(TokenKind::Send));
        assert_eq!(TokenKind::keyword("To"), Some(TokenKind::To));
        assert_eq!(TokenKind::keyword("new"), Some(TokenKind::New));
    }

    #[test]
    fn ordinary_identifiers_are_not_keywords() {
        for word in ["redCarA", "bridge", "x", "changeX", "para", "If", "wait"] {
            assert_eq!(TokenKind::keyword(word), None, "{word} must not be a keyword");
        }
    }
}
