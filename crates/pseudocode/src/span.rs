//! Source spans: byte ranges plus line/column information for
//! diagnostics.

use std::fmt;

/// A half-open byte range `[start, end)` into the original source,
/// together with the 1-based line and column of `start`.
///
/// Spans are carried on every token, statement and expression so that
/// diagnostics — and the runtime's execution events — can point back at
/// the pseudocode the student (or test) wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes (e.g.
    /// temporaries introduced by lowering).
    pub const SYNTH: Span = Span { start: 0, end: 0, line: 0, col: 0 };

    /// Create a new span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Synthesized spans are ignored: merging with [`Span::SYNTH`]
    /// returns the other span unchanged.
    pub fn merge(self, other: Span) -> Span {
        if self == Span::SYNTH {
            return other;
        }
        if other == Span::SYNTH {
            return self;
        }
        let (first, _) = if self.start <= other.start { (self, other) } else { (other, self) };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }

    /// Whether this span was synthesized by the compiler rather than
    /// written in the source.
    pub fn is_synthetic(&self) -> bool {
        *self == Span::SYNTH
    }

    /// Extract the source text this span covers.
    pub fn slice<'s>(&self, source: &'s str) -> &'s str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthesized>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_spans() {
        let a = Span::new(10, 14, 2, 1);
        let b = Span::new(2, 6, 1, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 2);
        assert_eq!(m.end, 14);
        assert_eq!(m.line, 1);
        assert_eq!(m.col, 3);
    }

    #[test]
    fn merge_with_synth_is_identity() {
        let a = Span::new(5, 9, 1, 6);
        assert_eq!(a.merge(Span::SYNTH), a);
        assert_eq!(Span::SYNTH.merge(a), a);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Span::new(0, 1, 3, 7).to_string(), "3:7");
        assert_eq!(Span::SYNTH.to_string(), "<synthesized>");
    }

    #[test]
    fn slice_is_safe_when_out_of_range() {
        let s = Span::new(100, 200, 1, 1);
        assert_eq!(s.slice("short"), "");
        assert_eq!(Span::new(0, 5, 1, 1).slice("hello world"), "hello");
    }
}
