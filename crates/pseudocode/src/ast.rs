//! Abstract syntax tree for the pseudocode notation.
//!
//! The tree mirrors the paper's figures closely: a program is a list of
//! top-level items (class definitions, function definitions, and the
//! "main" statements that run when the program starts).

use crate::span::Span;
use std::fmt;

/// A whole pseudocode program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub items: Vec<Item>,
}

impl Program {
    /// Iterate over top-level function definitions.
    pub fn functions(&self) -> impl Iterator<Item = &FuncDef> {
        self.items.iter().filter_map(|item| match item {
            Item::Func(f) => Some(f),
            _ => None,
        })
    }

    /// Iterate over class definitions.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.items.iter().filter_map(|item| match item {
            Item::Class(c) => Some(c),
            _ => None,
        })
    }

    /// The top-level statements that form the program entry point, in
    /// source order.
    pub fn main_body(&self) -> Vec<&Stmt> {
        self.items
            .iter()
            .filter_map(|item| match item {
                Item::Stmt(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// Look up a top-level function by name.
    pub fn function(&self, name: &str) -> Option<&FuncDef> {
        self.functions().find(|f| f.name == name)
    }

    /// Look up a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassDef> {
        self.classes().find(|c| c.name == name)
    }

    /// Total number of statements in the program, counting nested
    /// blocks. Used by tests and by the study crate's "program size"
    /// difficulty metric.
    pub fn statement_count(&self) -> usize {
        fn count_block(block: &Block) -> usize {
            block.iter().map(count_stmt).sum()
        }
        fn count_stmt(stmt: &Stmt) -> usize {
            1 + match &stmt.kind {
                StmtKind::If { arms, else_ } => {
                    arms.iter().map(|(_, b)| count_block(b)).sum::<usize>()
                        + else_.as_ref().map_or(0, count_block)
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => count_block(body),
                StmtKind::Para { tasks } => tasks.iter().map(count_stmt).sum(),
                StmtKind::ExcAcc { body } => count_block(body),
                StmtKind::OnReceiving { arms } => arms.iter().map(|a| count_block(&a.body)).sum(),
                StmtKind::Seq(block) => count_block(block),
                _ => 0,
            }
        }
        self.items
            .iter()
            .map(|item| match item {
                Item::Stmt(s) => count_stmt(s),
                Item::Func(f) => count_block(&f.body),
                Item::Class(c) => {
                    c.methods.iter().map(|m| count_block(&m.body)).sum::<usize>() + c.fields.len()
                }
            })
            .sum()
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Class(ClassDef),
    Func(FuncDef),
    Stmt(Stmt),
}

/// `CLASS name … ENDCLASS`: fields (class-level assignments, evaluated
/// at instantiation) and methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    pub name: String,
    /// Field name → initializer expression, in declaration order.
    pub fields: Vec<(String, Expr)>,
    pub methods: Vec<FuncDef>,
    pub span: Span,
}

impl ClassDef {
    /// Look up a method by name.
    pub fn method(&self, name: &str) -> Option<&FuncDef> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Whether any method body contains an `ON_RECEIVING` statement —
    /// i.e. whether instances of this class behave as message
    /// receivers (actors). Figure 5 calls such a method (`receive`)
    /// as a plain statement and then continues to send to the object,
    /// so receiver methods are started asynchronously.
    pub fn is_receiver(&self) -> bool {
        self.methods.iter().any(|m| m.contains_receive())
    }
}

/// `DEFINE name(params) … ENDDEF`.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub name: String,
    pub params: Vec<String>,
    pub body: Block,
    pub span: Span,
}

impl FuncDef {
    /// Whether the body (including nested blocks) contains an
    /// `ON_RECEIVING` statement.
    pub fn contains_receive(&self) -> bool {
        fn block_has(block: &Block) -> bool {
            block.iter().any(stmt_has)
        }
        fn stmt_has(stmt: &Stmt) -> bool {
            match &stmt.kind {
                StmtKind::OnReceiving { .. } => true,
                StmtKind::If { arms, else_ } => {
                    arms.iter().any(|(_, b)| block_has(b)) || else_.as_ref().is_some_and(block_has)
                }
                StmtKind::While { body, .. } | StmtKind::For { body, .. } => block_has(body),
                StmtKind::ExcAcc { body } | StmtKind::Seq(body) => block_has(body),
                StmtKind::Para { tasks } => tasks.iter().any(stmt_has),
                _ => false,
            }
        }
        block_has(&self.body)
    }
}

/// A sequence of statements.
pub type Block = Vec<Stmt>;

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

impl Stmt {
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }
}

/// Statement forms. Each *simple* statement (assignment, print, send,
/// wait, notify, call) executes as one atomic step in the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `target = expr` (Figure 1).
    Assign { target: LValue, value: Expr },
    /// `IF … THEN … ELSE IF … ELSE … ENDIF` (Figure 2). `arms` holds
    /// (condition, block) pairs in order.
    If { arms: Vec<(Expr, Block)>, else_: Option<Block> },
    /// `WHILE cond … ENDWHILE`.
    While { cond: Expr, body: Block },
    /// `FOR var = from TO to … ENDFOR` (inclusive bounds).
    For { var: String, from: Expr, to: Expr, body: Block },
    /// `PARA … ENDPARA` (Figure 3): each statement in the block runs as
    /// its own concurrent task; execution continues after `ENDPARA`
    /// only once every task has finished (join semantics — Figure 4's
    /// `PRINTLN x` after the block deterministically prints `9`).
    Para { tasks: Vec<Stmt> },
    /// `EXC_ACC … END_EXC_ACC` (Figure 4): exclusive access scoped by
    /// the shared variables appearing in the block.
    ExcAcc { body: Block },
    /// `WAIT()` — release the enclosing `EXC_ACC` footprint and sleep.
    Wait,
    /// `NOTIFY()` — wake **all** waiters.
    Notify,
    /// `AWAIT cond` — the task-discipline suspension point: block until
    /// `cond` holds (re-evaluated whenever the task could be resumed;
    /// no `NOTIFY` involved). `cond` must be call-free so the runtime
    /// can re-check it without side effects. A bare `AWAIT` is parsed
    /// as `AWAIT TRUE`, a pure yield point.
    Await { cond: Expr },
    /// `PRINT expr` / `PRINTLN expr`.
    Print { value: Expr, newline: bool },
    /// An expression evaluated for its effect — in practice always a
    /// call (`changeX(1)`, `r1.receive()`, `redCarA.run()`).
    ExprStmt(Expr),
    /// `Send(msg).To(receiver)` (Figure 5): asynchronous, never blocks.
    Send { msg: Expr, to: Expr },
    /// `ON_RECEIVING` with one arm per message name (Figure 5).
    OnReceiving { arms: Vec<ReceiveArm> },
    /// `SPAWN call` — explicitly start a call as a new concurrent task
    /// (extension; the paper's figures rely on the implicit receiver
    /// rule instead).
    Spawn { call: Expr },
    /// `RETURN expr?`.
    Return(Option<Expr>),
    /// `BREAK` out of the innermost loop.
    Break,
    /// `CONTINUE` the innermost loop.
    Continue,
    /// A sequential grouping with no surface syntax, produced only by
    /// the lowering pass (e.g. a `PARA` task whose call arguments had
    /// to be hoisted into temporaries stays a *single* task).
    Seq(Block),
}

/// One arm of an `ON_RECEIVING` statement:
/// `MESSAGE.name(bindings)` followed by a body.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceiveArm {
    pub msg_name: String,
    /// Variable names bound to the message payload.
    pub params: Vec<String>,
    pub body: Block,
    pub span: Span,
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A plain name. Resolution order at runtime: local → object field
    /// (inside methods) → global.
    Name(String),
    /// `expr.field`.
    Field(Box<Expr>, String),
    /// `expr[index]`.
    Index(Box<Expr>, Box<Expr>),
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Whether this expression contains any call, `new`, or spawned
    /// form — i.e. anything that is *not* a single atomic evaluation.
    /// The lowering pass hoists such subexpressions into temporaries.
    pub fn contains_call(&self) -> bool {
        match &self.kind {
            ExprKind::Call { .. } | ExprKind::New { .. } => true,
            ExprKind::Int(_)
            | ExprKind::Float(_)
            | ExprKind::Str(_)
            | ExprKind::Bool(_)
            | ExprKind::Name(_)
            | ExprKind::SelfRef => false,
            ExprKind::List(items) => items.iter().any(Expr::contains_call),
            ExprKind::Unary(_, e) => e.contains_call(),
            ExprKind::Binary(_, l, r) => l.contains_call() || r.contains_call(),
            ExprKind::Field(e, _) => e.contains_call(),
            ExprKind::Index(e, i) => e.contains_call() || i.contains_call(),
            ExprKind::Message { args, .. } => args.iter().any(Expr::contains_call),
        }
    }
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    /// `[e1, e2, …]` list literal (extension used by lab programs).
    List(Vec<Expr>),
    /// A variable reference.
    Name(String),
    /// `SELF` inside a method.
    SelfRef,
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `f(args)`, `obj.method(args)`, or a builtin like `LEN(x)`.
    Call {
        callee: Callee,
        args: Vec<Expr>,
    },
    /// `expr.field`.
    Field(Box<Expr>, String),
    /// `expr[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `new ClassName(args)`.
    New {
        class: String,
        args: Vec<Expr>,
    },
    /// `MESSAGE.name(args)` — a message value (Figure 5).
    Message {
        name: String,
        args: Vec<Expr>,
    },
}

/// Function-call targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Callee {
    /// A top-level function (or, inside a class, a sibling method).
    Name(String),
    /// `receiver.method`.
    Method(Box<Expr>, String),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "NOT",
        })
    }
}

/// Binary operators, in increasing precedence groups:
/// `OR` < `AND` < comparisons < `+ -` < `* / %`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// Parser precedence (higher binds tighter).
    pub fn precedence(self) -> u8 {
        use BinOp::*;
        match self {
            Or => 1,
            And => 2,
            Eq | Ne | Lt | Le | Gt | Ge => 3,
            Add | Sub => 4,
            Mul | Div | Mod => 5,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use BinOp::*;
        f.write_str(match self {
            Or => "OR",
            And => "AND",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: &str) -> Expr {
        Expr::new(ExprKind::Name(n.into()), Span::SYNTH)
    }

    #[test]
    fn contains_call_walks_nested_expressions() {
        let call = Expr::new(
            ExprKind::Call { callee: Callee::Name("f".into()), args: vec![] },
            Span::SYNTH,
        );
        let sum = Expr::new(
            ExprKind::Binary(BinOp::Add, Box::new(name("x")), Box::new(call)),
            Span::SYNTH,
        );
        assert!(sum.contains_call());
        assert!(!name("x").contains_call());
        let msg =
            Expr::new(ExprKind::Message { name: "h".into(), args: vec![name("v")] }, Span::SYNTH);
        assert!(!msg.contains_call());
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }
}
