//! End-to-end check of the failure path: a fixture with a planted
//! lost-update bug must be caught by the fuzzer, its schedule must
//! replay deterministically, and the shrinker must hand back a
//! minimal decision vector that still reproduces the failure.

use concur_conformance::{
    fuzz_problem, Discipline, Fixture, FuzzConfig, Harness, Outcome, ReplaySched, Sched,
};
use std::sync::{Arc, Mutex};

/// The model increments atomically: the only terminal output is "2".
const COUNTER_MODEL: &str = r#"
counter = 0

DEFINE inc()
    EXC_ACC
        counter = counter + 1
    END_EXC_ACC
ENDDEF

PARA
    inc()
    inc()
ENDPARA

PRINTLN counter
"#;

/// The "runtime" reads, yields, then writes back — the classic lost
/// update. Some schedules produce 1, which is not in the model set.
fn buggy_run(_discipline: Discipline, sched: &mut dyn Sched) -> Outcome {
    let counter = Arc::new(Mutex::new(0i64));
    let mut h = Harness::new();
    for _ in 0..2 {
        let counter = Arc::clone(&counter);
        h.spawn(move |ctx| {
            let seen = *counter.lock().unwrap();
            ctx.pause();
            *counter.lock().unwrap() = seen + 1;
        });
    }
    let run = h.run(sched);
    let obs = if run.deadlocked || run.diverged {
        None
    } else {
        Some(counter.lock().unwrap().to_string())
    };
    Outcome { run, obs, violation: None }
}

const BUGGY: Fixture = Fixture {
    name: "synthetic_lost_update",
    model: COUNTER_MODEL,
    can_deadlock: false,
    run: buggy_run,
};

#[test]
fn planted_bug_is_caught_shrunk_and_replayable() {
    let dir = std::env::temp_dir().join("concur-conformance-shrink-test");
    // Integration tests run in their own process, so the env var
    // cannot leak into other test binaries.
    std::env::set_var("CONFORMANCE_ARTIFACT_DIR", &dir);

    let config = FuzzConfig { check_agreement: false, ..FuzzConfig::default() };
    let err = fuzz_problem(&BUGGY, &config).expect_err("the planted lost update must be detected");

    assert_eq!(err.problem, "synthetic_lost_update");
    assert!(err.discipline.is_some(), "a schedule-level failure names its discipline");
    assert!(
        err.detail.contains("not in the model's terminal set"),
        "unexpected failure detail: {}",
        err.detail
    );

    // The shrunk vector must still reproduce the failure...
    let discipline = err.discipline.unwrap();
    let mut sched = ReplaySched::new(err.decisions.clone());
    let out = buggy_run(discipline, &mut sched);
    assert_eq!(out.obs.as_deref(), Some("1"), "shrunk schedule no longer loses the update");

    // ...and be minimal-ish: the bug needs at most a handful of
    // decisions (one preemption between read and write).
    assert!(err.decisions.len() <= 4, "shrinker left a long vector: {:?}", err.decisions);

    // The replay artifact was dumped for CI to upload.
    let artifact = err.artifact.as_ref().expect("artifact written");
    let body = std::fs::read_to_string(artifact).expect("artifact readable");
    assert!(body.contains("synthetic_lost_update"));
    assert!(body.contains(&format!("{:?}", err.decisions)));
}

// --- golden shrinker regressions --------------------------------------------
//
// The shrinker (prefix truncation + entry zeroing) is deterministic,
// so a known-bad schedule always reduces to the same minimal decision
// vector. Pinning those vectors turns any behavioural drift in the
// shrinker, the schedule sources, or the runtimes under test into a
// loud diff instead of a silent change of artifact quality.

/// Find a schedule (by seed scan) that drives the fixture into the
/// given failure, then shrink it against that predicate.
fn shrink_first_failure(
    fixture: &Fixture,
    discipline: Discipline,
    fails: impl Fn(&Outcome) -> bool,
) -> Vec<usize> {
    use concur_conformance::RandomSched;
    let found = (0..2000u64).find_map(|seed| {
        let out = (fixture.run)(discipline, &mut RandomSched::new(0x60_1D ^ seed));
        fails(&out).then_some(out.run.decisions)
    });
    let picks = found.expect("failure reachable within the seed budget");
    let minimal = concur_decide::shrink(picks, |p| {
        let out = (fixture.run)(discipline, &mut ReplaySched::new(p.to_vec()));
        fails(&out)
    });
    // The minimum must still fail — shrink's contract.
    let replayed = (fixture.run)(discipline, &mut ReplaySched::new(minimal.clone()));
    assert!(fails(&replayed), "shrunk vector no longer reproduces the failure");
    minimal
}

#[test]
fn planted_bug_shrinks_to_the_pinned_minimal_vector() {
    let minimal =
        shrink_first_failure(&BUGGY, Discipline::Threads, |out| out.obs.as_deref() == Some("1"));
    // One decision: schedule the second thread's read before the first
    // write lands — the smallest schedule that loses an update.
    assert_eq!(minimal, vec![1], "planted lost-update minimal schedule drifted");
}

#[test]
fn dining_deadlock_shrinks_to_the_pinned_minimal_vector_per_discipline() {
    let fixture = concur_conformance::FIXTURES
        .iter()
        .find(|f| f.name == "dining_naive")
        .expect("dining_naive fixture");
    for (discipline, expected) in [
        // Both runtimes bottom out in the same three-decision shape:
        // hand each philosopher its first fork, then let the crossed
        // second takes starve each other.
        (Discipline::Coroutines, vec![1, 0, 1]),
        (Discipline::Tasks, vec![1, 0, 1]),
    ] {
        let minimal = shrink_first_failure(fixture, discipline, |out| out.run.deadlocked);
        assert_eq!(
            minimal,
            expected,
            "{}: minimal deadlocking schedule drifted",
            discipline.label()
        );
    }
}

#[test]
fn correct_version_of_the_same_fixture_passes() {
    fn correct_run(_discipline: Discipline, sched: &mut dyn Sched) -> Outcome {
        let counter = Arc::new(Mutex::new(0i64));
        let mut h = Harness::new();
        for _ in 0..2 {
            let counter = Arc::clone(&counter);
            h.spawn(move |ctx| {
                ctx.pause();
                *counter.lock().unwrap() += 1;
            });
        }
        let run = h.run(sched);
        let obs = if run.deadlocked || run.diverged {
            None
        } else {
            Some(counter.lock().unwrap().to_string())
        };
        Outcome { run, obs, violation: None }
    }
    const CORRECT: Fixture = Fixture {
        name: "synthetic_atomic_update",
        model: COUNTER_MODEL,
        can_deadlock: false,
        run: correct_run,
    };
    // Small budget: this is a smoke test of the passing path.
    let config = FuzzConfig {
        iters: 50,
        systematic: 10,
        preempt_bound: 2,
        check_agreement: false,
        ..FuzzConfig::default()
    };
    let report = fuzz_problem(&CORRECT, &config).expect("atomic version conforms");
    assert_eq!(report.model_outputs.len(), 1);
    assert!(report.model_outputs.contains("2"));
}
