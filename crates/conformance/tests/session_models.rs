//! Differential: the memoized query layer answers every conformance
//! model identically to the direct serial explorer — terminal sets
//! byte-for-byte, admits_trace verdicts included — at every build
//! worker count.

use concur_conformance::models;
use concur_exec::{EventKindPattern, EventPattern, Explorer, Interp, QueryCache, Session};
use std::sync::Arc;

const MODELS: &[(&str, &str)] = &[
    ("dining-ordered", models::DINING_ORDERED),
    ("dining-naive", models::DINING_NAIVE),
    ("bounded-buffer", models::BOUNDED_BUFFER),
    ("readers-writers", models::READERS_WRITERS),
    ("sleeping-barber", models::SLEEPING_BARBER),
    ("bridge", models::BRIDGE),
    ("party-matching", models::PARTY_MATCHING),
    ("book-inventory", models::BOOK_INVENTORY),
    ("sum-workers", models::SUM_WORKERS),
    ("thread-pool", models::THREAD_POOL),
    ("tasks-dining-ordered", models::TASKS_DINING_ORDERED),
    ("tasks-dining-naive", models::TASKS_DINING_NAIVE),
    ("tasks-bounded-buffer", models::TASKS_BOUNDED_BUFFER),
    ("tasks-bridge", models::TASKS_BRIDGE),
    ("tasks-book-inventory", models::TASKS_BOOK_INVENTORY),
];

#[test]
fn all_models_byte_identical_to_serial_at_all_worker_counts() {
    for (name, src) in MODELS {
        let interp = Interp::from_source(src).expect("model compiles");
        let serial = Explorer::new(&interp).with_threads(1).terminals().expect("explores");
        for workers in [1usize, 2, 4, 8] {
            let cache = Arc::new(QueryCache::new());
            let session = Session::new(&interp).with_threads(workers).with_cache(cache);
            let fresh = session.terminals().expect("explores");
            let cached = session.terminals().expect("explores");
            assert_eq!(fresh.terminals, serial.terminals, "{name} @{workers}: fresh vs serial");
            assert_eq!(cached.terminals, serial.terminals, "{name} @{workers}: cached vs serial");
            assert_eq!(
                fresh.stats.truncated, serial.stats.truncated,
                "{name} @{workers}: truncation flag"
            );
        }
    }
}

/// Every output the model admits is re-admitted as an ordered
/// Printed-token trace by the session (the fuzz oracle's re-query
/// path), and a nonsense trace is rejected — verdicts matching the
/// direct serial explorer.
#[test]
fn admits_trace_verdicts_match_serial() {
    let trace_of = |obs: &str| -> Vec<EventPattern> {
        obs.split_whitespace()
            .map(|tok| EventPattern::any(EventKindPattern::Printed { text: tok.to_string() }))
            .collect()
    };
    for (name, src) in &MODELS[..4] {
        let interp = Interp::from_source(src).expect("model compiles");
        let explorer = Explorer::new(&interp).with_threads(1);
        let session = Session::new(&interp).with_cache(Arc::new(QueryCache::new()));
        let model = session.terminals().expect("explores");
        for obs in model.outputs() {
            let trace = trace_of(&obs);
            let direct = explorer.admits_trace(&trace).expect("explores");
            let cached = session.admits_trace(&trace).expect("explores");
            assert_eq!(cached.is_yes(), direct.is_yes(), "{name}: {obs:?} verdict");
            assert!(cached.is_yes(), "{name}: model output {obs:?} must be admitted");
        }
        let bogus = trace_of("999 999 999");
        let direct = explorer.admits_trace(&bogus).expect("explores");
        let cached = session.admits_trace(&bogus).expect("explores");
        assert_eq!(cached.is_yes(), direct.is_yes(), "{name}: bogus trace verdict");
        assert!(!cached.is_yes(), "{name}: bogus trace must be rejected");
    }
}

/// All Printed-trace queries of one model share one graph (the
/// signature coarsens Printed text away): N distinct traces cost one
/// build.
#[test]
fn printed_trace_queries_share_one_graph() {
    let cache = Arc::new(QueryCache::new());
    let interp = Interp::from_source(models::BOUNDED_BUFFER).expect("model compiles");
    let session = Session::new(&interp).with_cache(Arc::clone(&cache));
    let model = session.terminals().expect("explores");
    let outputs = model.outputs();
    assert!(outputs.len() >= 2, "bounded buffer has several outcomes");
    for obs in &outputs {
        let trace: Vec<EventPattern> = obs
            .split_whitespace()
            .map(|tok| EventPattern::any(EventKindPattern::Printed { text: tok.to_string() }))
            .collect();
        assert!(session.admits_trace(&trace).expect("explores").is_yes());
    }
    let stats = cache.stats();
    // One graph for the terminal query (no visible patterns) and one
    // for the shared Printed signature.
    assert_eq!(stats.builds, 2, "all Printed traces share one graph build");
    assert_eq!(stats.hits, outputs.len() - 1, "every trace after the first is a hit");
}
