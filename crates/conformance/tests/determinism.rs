//! Cross-discipline determinism of the decision kernel.
//!
//! The decision substrate (`concur-decide`) promises that *all*
//! nondeterminism in a controlled run flows through one recorded
//! `ChoiceSource`. These tests pin the three consequences the rest of
//! the workbench relies on:
//!
//! 1. **Seed determinism** — the same seed drives byte-identical runs
//!    (observations *and* decision traces) in every discipline, and a
//!    recorded trace replays to the identical observation.
//! 2. **Truncation validity** — any prefix of a valid trace, replayed
//!    with the kernel's pad-with-0 convention, is again a valid
//!    schedule: the run terminates and its observation stays inside
//!    the model's exhaustive terminal set. This is what makes
//!    truncation a sound shrinking move.
//! 3. **Real-runtime replay** — the same guarantees hold for the
//!    chaos kernel armed under real `concur-threads` locks, for a
//!    deterministic (single-worker) scenario.

use concur_conformance::{Discipline, Fixture, RandomSched, ReplaySched, FIXTURES};
use concur_exec::{Explorer, Interp, TerminalSet};

const SEED: u64 = 0xD00D_FEED;

fn fixture(name: &str) -> &'static Fixture {
    FIXTURES.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("no fixture {name}"))
}

fn terminals(f: &Fixture) -> TerminalSet {
    let interp = Interp::from_source(f.model).expect("model parses");
    let set = Explorer::new(&interp).terminals().expect("model explores");
    assert!(!set.stats.truncated, "{}: model exploration truncated", f.name);
    set
}

#[test]
fn every_discipline_is_seed_deterministic_and_trace_replayable() {
    for f in FIXTURES {
        for d in Discipline::ALL {
            let first = (f.run)(d, &mut RandomSched::new(SEED));
            let second = (f.run)(d, &mut RandomSched::new(SEED));
            assert_eq!(
                first.obs,
                second.obs,
                "{}/{}: same seed, different observations",
                f.name,
                d.label()
            );
            assert_eq!(
                first.run.trace,
                second.run.trace,
                "{}/{}: same seed, different decision traces",
                f.name,
                d.label()
            );

            let replayed = (f.run)(d, &mut ReplaySched::new(first.run.trace.picks()));
            assert_eq!(
                replayed.obs,
                first.obs,
                "{}/{}: recorded trace did not replay to the same observation",
                f.name,
                d.label()
            );
            assert_eq!(
                replayed.run.trace.picks(),
                first.run.trace.picks(),
                "{}/{}: replay re-recorded a different decision vector",
                f.name,
                d.label()
            );
        }
    }
}

#[test]
fn truncating_a_valid_trace_yields_a_valid_schedule_in_every_discipline() {
    // One deadlock-free, choice-rich fixture and the one fixture whose
    // model admits deadlock (the prefix-replay of a deadlock-capable
    // program may legitimately end in that deadlock).
    for f in [fixture("bounded_buffer"), fixture("dining_naive")] {
        let model = terminals(f);
        for d in Discipline::ALL {
            let recorded = (f.run)(d, &mut RandomSched::new(SEED));
            let picks = recorded.run.trace.picks();
            for cut in 0..=picks.len() {
                let prefix: Vec<usize> = picks[..cut].to_vec();
                let out = (f.run)(d, &mut ReplaySched::new(prefix));
                assert!(
                    !out.run.diverged,
                    "{}/{}: truncated-at-{cut} replay diverged",
                    f.name,
                    d.label()
                );
                if out.run.deadlocked {
                    assert!(
                        f.can_deadlock && model.has_deadlock(),
                        "{}/{}: truncated-at-{cut} replay deadlocked but the model forbids it",
                        f.name,
                        d.label()
                    );
                    continue;
                }
                let obs = out.obs.expect("completed run has an observation");
                assert!(
                    model.contains_output(&obs),
                    "{}/{}: truncated-at-{cut} replay produced \"{obs}\", \
                     not in the model's terminal set",
                    f.name,
                    d.label()
                );
                assert!(
                    out.violation.is_none(),
                    "{}/{}: truncated-at-{cut} replay violated invariants: {:?}",
                    f.name,
                    d.label(),
                    out.violation
                );
            }
        }
    }
}

#[test]
fn task_discipline_traces_speak_the_poll_vocabulary() {
    // The async executor routes every poll-order choice through the
    // kernel as `Poll` (internal `ctx.choose` points stay `Choice`);
    // no other decision kind may appear in a tasks trace.
    use concur_decide::DecisionKind;
    for f in FIXTURES {
        let out = (f.run)(Discipline::Tasks, &mut RandomSched::new(SEED));
        let trace = &out.run.trace;
        assert!(
            trace.decisions.iter().any(|d| d.kind == DecisionKind::Poll),
            "{}: tasks run recorded no Poll decisions",
            f.name
        );
        assert!(
            trace
                .decisions
                .iter()
                .all(|d| matches!(d.kind, DecisionKind::Poll | DecisionKind::Choice)),
            "{}: tasks trace contains a non-Poll, non-Choice decision",
            f.name
        );
    }
}

/// A deterministic real-runtime scenario: one worker thread takes real
/// `concur_threads::Mutex` locks (each lock entry is a recorded chaos
/// perturbation point) and additionally branches on explicit
/// `chaos::choice` decisions. With a single worker, the chaos kernel's
/// global arrival order is the program order, so records and replays
/// are exact — this is the controlled-executor determinism guarantee
/// carried over to real threads.
fn real_single_worker_scenario() -> (Vec<usize>, concur_decide::DecisionTrace) {
    use concur_threads::Mutex;
    use std::sync::Arc;

    let counter = Arc::new(Mutex::new(0u64));
    let worker = {
        let counter = Arc::clone(&counter);
        std::thread::spawn(move || {
            let mut observed = Vec::new();
            for _ in 0..12 {
                {
                    let mut c = counter.lock(); // perturbation point
                    *c += 1;
                }
                observed.push(concur_threads::chaos::choice(5));
            }
            observed
        })
    };
    let observed = worker.join().expect("worker thread panicked");
    let trace = concur_threads::chaos::uninstall();
    (observed, trace)
}

#[test]
fn real_runtime_chaos_replays_byte_identically_for_a_single_worker() {
    use concur_decide::DecisionKind;

    concur_threads::chaos::install(SEED);
    let (obs_a, trace_a) = real_single_worker_scenario();
    concur_threads::chaos::install(SEED);
    let (obs_b, trace_b) = real_single_worker_scenario();
    assert_eq!(obs_a, obs_b, "same chaos seed, different real-runtime observations");
    assert_eq!(trace_a, trace_b, "same chaos seed, different chaos traces");

    // The trace interleaves lock perturbations with explicit choices,
    // all in the chaos vocabulary.
    assert!(trace_a.decisions.iter().all(|d| d.kind == DecisionKind::Chaos));
    assert!(trace_a.decisions.iter().any(|d| d.arity == 5), "explicit choices recorded");
    assert!(obs_a.iter().any(|&p| p != 0), "a seeded source varies its answers");

    concur_threads::chaos::install_replay(trace_a.picks());
    let (obs_r, trace_r) = real_single_worker_scenario();
    assert_eq!(obs_r, obs_a, "replayed chaos trace changed the observation");
    assert_eq!(trace_r.picks(), trace_a.picks(), "replay re-recorded a different stream");
}
