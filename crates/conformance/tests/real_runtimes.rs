//! Spot-checks of the real runtimes (OS threads, actor mailboxes, the
//! coroutine scheduler) against the same explorer oracles used by the
//! controlled fuzzer. See `concur_conformance::real`.

use concur_conformance::real::spot_check_all;

#[test]
fn real_runtime_observations_are_members_of_the_model_sets() {
    let reports = spot_check_all(4, 0xBADC_0FFE).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(reports.len(), 10);
    for r in &reports {
        println!("{:<16} runs={:<3} observed={:?}", r.name, r.runs, r.observed);
        assert!(r.runs > 0);
        assert!(!r.observed.is_empty(), "{}: no observations recorded", r.name);
    }
}
