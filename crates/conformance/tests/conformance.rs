//! The full conformance campaign: every classical problem, every
//! paradigm discipline, ≥1000 fuzzed schedules each, differentially
//! checked against the explorer's exhaustive terminal sets.
//!
//! Honours `FUZZ_SEED` / `FUZZ_ITERS` / `FUZZ_FAMILY` (see README). A
//! failure prints the shrunk minimal schedule and the path of the
//! replay artifact.

use concur_conformance::{fuzz_all, FuzzConfig, FIXTURES};

#[test]
fn all_problems_conform_to_their_models() {
    let config = FuzzConfig::from_env();
    let reports = match fuzz_all(&config) {
        Ok(r) => r,
        Err(e) => panic!("conformance failure: {e}"),
    };
    assert_eq!(reports.len(), FIXTURES.len());

    println!("problem              model-outputs deadlock  schedules  per-discipline outputs");
    for r in &reports {
        let per: Vec<String> = r
            .per_discipline
            .iter()
            .map(|d| format!("{}:{}({}dl)", d.discipline.label(), d.outputs.len(), d.deadlocks))
            .collect();
        println!(
            "{:<20} {:>13} {:>8} {:>10}  {}",
            r.name,
            r.model_outputs.len(),
            r.model_deadlock,
            r.total_schedules(),
            per.join(" ")
        );
        // Single-family runs (FUZZ_FAMILY) drive fewer schedules and
        // cannot saturate the output sets, so the budget floor and the
        // agreement double-check only bind for combined campaigns.
        let floor = if config.check_agreement { 1000 } else { 1 };
        for d in &r.per_discipline {
            assert!(
                d.schedules >= floor,
                "{}/{}: only {} schedules, budget floor is {floor}",
                r.name,
                d.discipline.label(),
                d.schedules
            );
            // Memberships are enforced inside the fuzzer; agreement is
            // double-checked here so the table above is trustworthy.
            if config.check_agreement {
                assert_eq!(
                    d.outputs,
                    r.model_outputs,
                    "{}/{}: output set disagrees with the model",
                    r.name,
                    d.discipline.label()
                );
            }
        }
    }
}
