//! Satellite to the conformance campaign: per-problem safety
//! invariants under the controlled scheduler, one test per classical
//! problem so a regression names its problem directly.
//!
//! Each test drives the fixture's four disciplines over a batch of
//! random seeds and asserts the problem's own validator found no
//! violation, no run diverged, and deadlock only ever appeared where
//! the model proves it reachable. This is narrower than the full
//! differential campaign in `conformance.rs` (no model membership),
//! which keeps it fast enough to run per-problem during development.

use concur_conformance::{Discipline, RandomSched, FIXTURES};

const SEEDS: u64 = 150;

fn check(name: &str) {
    let fixture = FIXTURES
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("no fixture named {name}"));
    for discipline in Discipline::ALL {
        let mut deadlocks = 0usize;
        for seed in 0..SEEDS {
            let mut sched = RandomSched::new(0x5EED_0000 ^ seed);
            let out = (fixture.run)(discipline, &mut sched);
            assert!(!out.run.diverged, "{name}/{}: diverged at seed {seed}", discipline.label());
            if let Some(v) = &out.violation {
                panic!(
                    "{name}/{}: invariant violation at seed {seed}: {v}\nreplay decisions: {:?}",
                    discipline.label(),
                    out.run.decisions
                );
            }
            if out.run.deadlocked {
                deadlocks += 1;
                assert!(
                    fixture.can_deadlock,
                    "{name}/{}: unexpected deadlock at seed {seed}\nreplay decisions: {:?}",
                    discipline.label(),
                    out.run.decisions
                );
            } else {
                assert!(
                    out.obs.is_some(),
                    "{name}/{}: seed {seed} finished without an observation",
                    discipline.label()
                );
            }
        }
        if fixture.can_deadlock {
            assert!(
                deadlocks > 0,
                "{name}/{}: deadlock is reachable in the model but never hit in {SEEDS} seeds",
                discipline.label()
            );
        }
    }
}

#[test]
fn dining_ordered_invariants() {
    check("dining_ordered");
}

#[test]
fn dining_naive_invariants() {
    check("dining_naive");
}

#[test]
fn bounded_buffer_invariants() {
    check("bounded_buffer");
}

#[test]
fn readers_writers_invariants() {
    check("readers_writers");
}

#[test]
fn sleeping_barber_invariants() {
    check("sleeping_barber");
}

#[test]
fn bridge_invariants() {
    check("bridge");
}

#[test]
fn party_matching_invariants() {
    check("party_matching");
}

#[test]
fn book_inventory_invariants() {
    check("book_inventory");
}

#[test]
fn sum_workers_invariants() {
    check("sum_workers");
}

#[test]
fn thread_pool_invariants() {
    check("thread_pool");
}

#[test]
fn every_fixture_has_an_invariant_test() {
    // Guard against a new fixture silently missing from this file.
    let tested = [
        "dining_ordered",
        "dining_naive",
        "bounded_buffer",
        "readers_writers",
        "sleeping_barber",
        "bridge",
        "party_matching",
        "book_inventory",
        "sum_workers",
        "thread_pool",
    ];
    for f in FIXTURES {
        assert!(tested.contains(&f.name), "fixture {} has no invariant test", f.name);
    }
}
