//! Modelled actor mailboxes for the controlled executor.
//!
//! A [`SimBox`] is the actor-discipline counterpart of
//! [`crate::sync::MLock`]: instead of deciding *who enters a section*,
//! the scheduler decides *which pending message is delivered next*.
//! `recv` exposes the full mailbox to the scheduler via
//! [`TaskCtx::choose_delivery`] (a `DecisionKind::Delivery` entry in
//! the recorded trace), so the fuzzer explores every delivery order —
//! the same nondeterminism the real `concur-actors` mailbox exhibits
//! when several senders race, surfaced through
//! `concur_actors::Mailbox::pop_nth` on the real side.

use crate::exec::TaskCtx;
use crate::sync::Shared;
use std::collections::VecDeque;

/// A mailbox whose delivery order is a scheduler decision.
pub struct SimBox<M> {
    inner: Shared<VecDeque<M>>,
}

impl<M> Clone for SimBox<M> {
    fn clone(&self) -> Self {
        SimBox { inner: self.inner.clone() }
    }
}

impl<M> Default for SimBox<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> SimBox<M> {
    pub fn new() -> Self {
        SimBox { inner: Shared::new(VecDeque::new()) }
    }

    /// Asynchronous send: enqueue and continue.
    pub fn send(&self, msg: M) {
        self.inner.with(|q| q.push_back(msg));
    }

    pub fn len(&self) -> usize {
        self.inner.with(|q| q.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until a message is pending, then let the scheduler pick
    /// which one to deliver.
    pub fn recv(&self, ctx: &mut TaskCtx<'_>) -> M
    where
        M: Send + 'static,
    {
        let inner = self.inner.clone();
        ctx.block_until(move || inner.with(|q| !q.is_empty()));
        let n = self.len();
        let idx = ctx.choose_delivery(n);
        self.inner.with(|q| q.remove(idx)).expect("chosen index is within the mailbox")
    }

    /// Non-blocking receive of a scheduler-chosen message, if any.
    pub fn try_recv(&self, ctx: &mut TaskCtx<'_>) -> Option<M> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let idx = ctx.choose_delivery(n);
        self.inner.with(|q| q.remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Harness, RandomSched, Run, Sched};
    use crate::sync::Recorder;
    use std::collections::BTreeSet;

    fn two_senders_one_receiver(sched: &mut dyn Sched) -> (Run, String) {
        let boxed: SimBox<i64> = SimBox::new();
        let rec = Recorder::new();
        let mut h = Harness::new();
        for token in [1i64, 2] {
            let boxed = boxed.clone();
            h.spawn(move |ctx| {
                ctx.pause();
                boxed.send(token);
            });
        }
        {
            let boxed = boxed.clone();
            let rec = rec.clone();
            h.spawn(move |ctx| {
                for _ in 0..2 {
                    let m = boxed.recv(ctx);
                    rec.push(m);
                }
            });
        }
        let run = h.run(sched);
        (run, rec.render())
    }

    #[test]
    fn delivery_order_is_a_scheduler_decision() {
        let mut seen = BTreeSet::new();
        for seed in 0..60 {
            let (run, obs) = two_senders_one_receiver(&mut RandomSched::new(seed));
            assert!(!run.deadlocked && !run.diverged, "seed {seed}");
            seen.insert(obs);
        }
        let want: BTreeSet<String> = ["1 2".to_string(), "2 1".to_string()].into_iter().collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn recv_blocks_until_a_message_arrives() {
        let boxed: SimBox<u8> = SimBox::new();
        let rec = Recorder::new();
        let mut h = Harness::new();
        let (b1, r1) = (boxed.clone(), rec.clone());
        h.spawn(move |ctx| {
            let m = b1.recv(ctx);
            r1.push(m as i64);
        });
        let b2 = boxed.clone();
        h.spawn(move |ctx| {
            ctx.pause();
            ctx.pause();
            b2.send(7);
        });
        let run = h.run(&mut RandomSched::new(3));
        assert!(!run.deadlocked);
        assert_eq!(rec.render(), "7");
    }
}
