//! Schedule fuzzing with a differential oracle and automatic
//! shrinking.
//!
//! For each fixture the driver first explores the pseudocode model
//! exhaustively (erroring if the explorer truncates — models are sized
//! so it never does), then executes the problem under every discipline
//! on two schedule families:
//!
//! * **systematic** — [`BoundedSched`] decodes a schedule index into a
//!   mixed-radix decision sequence under a preemption budget, walking
//!   the low-preemption neighbourhood that finds most concurrency bugs
//!   (preemption bounding à la CHESS);
//! * **random** — [`RandomSched`] seeded from `FUZZ_SEED`, covering
//!   the long tail.
//!
//! Every run is checked against the oracle:
//!
//! 1. the run must not diverge,
//! 2. the problem's own invariant validator must pass,
//! 3. a deadlock is accepted only if the model provably deadlocks,
//! 4. otherwise the observation must be a member of the model's
//!    exhaustive output set.
//!
//! A failing schedule is first replayed from its recorded decision
//! vector (replay determinism is itself asserted), then shrunk to a
//! minimal failing vector by the kernel's [`concur_decide::shrink`]
//! (prefix truncation + entry zeroing), and finally dumped in the
//! universal trace-artifact format ([`concur_decide::artifact`]) under
//! `$CONFORMANCE_ARTIFACT_DIR` (default `target/conformance/`).
//!
//! After all schedules pass, the observable-output sets of the four
//! disciplines are compared with each other and with the model
//! (*cross-model agreement*), and one passing trace per discipline is
//! re-checked through [`Session::admits_trace`], exercising the
//! event-level membership entry point against the memoized state
//! graph.

use crate::exec::{BoundedSched, RandomSched, ReplaySched};
use crate::problems::{Discipline, Fixture, Outcome, FIXTURES};
use concur_decide::{shrink, TraceArtifact};
use concur_exec::{EventKindPattern, EventPattern, Interp, Session, TerminalSet};
use std::collections::BTreeSet;
use std::fmt;
use std::path::PathBuf;

/// Knobs for one fuzzing campaign. `FUZZ_SEED` and `FUZZ_ITERS`
/// override the base seed and random-phase iteration count from the
/// environment (see README).
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Base seed; per-run seeds are derived from it, the fixture name,
    /// the discipline, and the iteration index.
    pub seed: u64,
    /// Random schedules per problem per discipline.
    pub iters: usize,
    /// Systematic schedule indices tried per preemption bound.
    pub systematic: usize,
    /// Preemption budgets explored systematically (0..=bound).
    pub preempt_bound: usize,
    /// Enforce cross-discipline output-set agreement (needs enough
    /// iterations to saturate the sets; disable for tiny smoke runs).
    pub check_agreement: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        // 4 bounds x 100 indices + 700 random = 1100 schedules per
        // problem per discipline.
        FuzzConfig {
            seed: 0xC0FFEE,
            iters: 700,
            systematic: 100,
            preempt_bound: 3,
            check_agreement: true,
        }
    }
}

impl FuzzConfig {
    /// Default config with `FUZZ_SEED` / `FUZZ_ITERS` / `FUZZ_FAMILY`
    /// applied. `FUZZ_FAMILY=systematic` drops the random phase and
    /// `FUZZ_FAMILY=random` drops the systematic one (any other value,
    /// including `combined`, keeps both); a single family cannot
    /// saturate the output sets, so it also disables the agreement
    /// check — membership is still enforced on every run.
    pub fn from_env() -> Self {
        let mut cfg = FuzzConfig::default();
        if let Some(seed) = std::env::var("FUZZ_SEED").ok().and_then(|s| s.parse().ok()) {
            cfg.seed = seed;
        }
        if let Some(iters) = std::env::var("FUZZ_ITERS").ok().and_then(|s| s.parse().ok()) {
            cfg.iters = iters;
        }
        match std::env::var("FUZZ_FAMILY").as_deref() {
            Ok("systematic") => {
                cfg.iters = 0;
                cfg.check_agreement = false;
            }
            Ok("random") => {
                cfg.systematic = 0;
                cfg.check_agreement = false;
            }
            _ => {}
        }
        cfg
    }

    /// Total schedules driven per (problem, discipline) pair.
    pub fn schedules_per_discipline(&self) -> usize {
        self.systematic * (self.preempt_bound + 1) + self.iters
    }
}

/// What the fuzzer observed for one discipline of one problem.
#[derive(Debug, Clone)]
pub struct DisciplineReport {
    pub discipline: Discipline,
    pub schedules: usize,
    pub outputs: BTreeSet<String>,
    pub deadlocks: usize,
}

/// Per-problem campaign summary.
#[derive(Debug)]
pub struct ProblemReport {
    pub name: &'static str,
    pub model_outputs: BTreeSet<String>,
    pub model_deadlock: bool,
    pub per_discipline: Vec<DisciplineReport>,
}

impl ProblemReport {
    pub fn total_schedules(&self) -> usize {
        self.per_discipline.iter().map(|d| d.schedules).sum()
    }
}

/// A conformance failure, carrying the (shrunk) decision vector that
/// replays it deterministically.
#[derive(Debug)]
pub struct ConformanceError {
    pub problem: String,
    pub discipline: Option<Discipline>,
    pub detail: String,
    /// Minimal failing decision vector (empty for non-schedule
    /// failures such as model truncation or set disagreement).
    pub decisions: Vec<usize>,
    /// Where the replayable artifact was written, if it was.
    pub artifact: Option<PathBuf>,
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.problem)?;
        if let Some(d) = self.discipline {
            write!(f, "/{}", d.label())?;
        }
        write!(f, "] {}", self.detail)?;
        if !self.decisions.is_empty() {
            write!(f, "; minimal failing schedule {:?}", self.decisions)?;
        }
        if let Some(p) = &self.artifact {
            write!(f, "; artifact {}", p.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for ConformanceError {}

/// Classify one outcome against the model oracle. `None` = conformant.
fn check_outcome(out: &Outcome, model: &TerminalSet, model_deadlock: bool) -> Option<String> {
    if out.run.diverged {
        return Some("run diverged (step budget exhausted)".to_string());
    }
    if let Some(v) = &out.violation {
        return Some(format!("invariant violation: {v}"));
    }
    if out.run.deadlocked {
        if model_deadlock {
            return None;
        }
        return Some("run deadlocked but the model admits no deadlock".to_string());
    }
    let obs = out.obs.as_deref().unwrap_or_default();
    if !model.contains_output(obs) {
        return Some(format!("observation \"{obs}\" is not in the model's terminal set"));
    }
    None
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn derive_seed(base: u64, name: &str, discipline: Discipline, iter: usize) -> u64 {
    let mut h = base;
    for b in name.bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    h = splitmix64(h ^ discipline.label().len() as u64 ^ (discipline as u64) << 32);
    splitmix64(h ^ iter as u64)
}

/// Artifact directory shared by every trace dumper in this crate
/// (fuzzer failures here, real-runtime chaos failures in
/// [`crate::real`]): `$CONFORMANCE_ARTIFACT_DIR`, default
/// `target/conformance/`.
pub(crate) fn artifact_dir() -> PathBuf {
    std::env::var("CONFORMANCE_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/conformance"))
}

/// Best-effort write of a universal trace artifact (see
/// `concur_decide::artifact`). IO failures are swallowed — the
/// decision vector is also in the error itself.
pub(crate) fn write_artifact(file_stem: &str, artifact: &TraceArtifact) -> Option<PathBuf> {
    let dir = artifact_dir();
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{file_stem}.schedule.txt"));
    std::fs::write(&path, artifact.render()).ok()?;
    Some(path)
}

/// Dump a shrunk failing fuzzer schedule as a replayable artifact.
fn dump_artifact(
    fixture: &Fixture,
    discipline: Discipline,
    detail: &str,
    decisions: &[usize],
) -> Option<PathBuf> {
    let artifact = TraceArtifact::from_picks(fixture.name, discipline.label(), detail, decisions);
    write_artifact(&format!("{}-{}", fixture.name, discipline.label()), &artifact)
}

fn fail(
    fixture: &Fixture,
    discipline: Discipline,
    detail: String,
    decisions: Vec<usize>,
    model: &TerminalSet,
    model_deadlock: bool,
) -> ConformanceError {
    // Replay determinism: the recorded vector must reproduce *a*
    // failure. If it does not, that is itself the bug to report.
    let replay_fails = |d: &[usize]| {
        let mut sched = ReplaySched::new(d.to_vec());
        let out = (fixture.run)(discipline, &mut sched);
        check_outcome(&out, model, model_deadlock).is_some()
    };
    if !replay_fails(&decisions) {
        return ConformanceError {
            problem: fixture.name.to_string(),
            discipline: Some(discipline),
            detail: format!("{detail} — AND the recorded schedule did not replay the failure"),
            decisions,
            artifact: None,
        };
    }
    let minimal = shrink(decisions, replay_fails);
    let artifact = dump_artifact(fixture, discipline, &detail, &minimal);
    ConformanceError {
        problem: fixture.name.to_string(),
        discipline: Some(discipline),
        detail,
        decisions: minimal,
        artifact,
    }
}

/// Fuzz one fixture under all three disciplines against its model.
pub fn fuzz_problem(
    fixture: &Fixture,
    config: &FuzzConfig,
) -> Result<ProblemReport, ConformanceError> {
    let model_err = |detail: String| ConformanceError {
        problem: fixture.name.to_string(),
        discipline: None,
        detail,
        decisions: Vec::new(),
        artifact: None,
    };

    let interp = Interp::from_source(fixture.model)
        .map_err(|e| model_err(format!("model does not parse: {e}")))?;
    // The memoized query layer: the terminal oracle and every
    // admits_trace re-query below read one cached graph per model
    // (Printed-pattern text is coarsened out of the cache key), and
    // repeated campaigns over the same fixtures rebuild nothing.
    let session = Session::new(&interp);
    let model =
        session.terminals().map_err(|e| model_err(format!("model exploration failed: {e}")))?;
    if model.stats.truncated {
        return Err(model_err("model exploration truncated; shrink the model config".into()));
    }
    let model_deadlock = model.has_deadlock();
    if model_deadlock != fixture.can_deadlock {
        return Err(model_err(format!(
            "fixture says can_deadlock={} but the model says {}",
            fixture.can_deadlock, model_deadlock
        )));
    }
    let model_outputs = model.output_set();

    let mut per_discipline = Vec::new();
    for discipline in Discipline::ALL {
        let mut outputs = BTreeSet::new();
        let mut deadlocks = 0usize;
        let mut schedules = 0usize;
        let mut witness: Option<String> = None;

        let observe = |out: &Outcome,
                       outputs: &mut BTreeSet<String>,
                       deadlocks: &mut usize,
                       witness: &mut Option<String>| {
            if out.run.deadlocked {
                *deadlocks += 1;
            } else if let Some(obs) = &out.obs {
                outputs.insert(obs.clone());
                if witness.is_none() {
                    *witness = Some(obs.clone());
                }
            }
        };

        // Systematic phase: preemption-bounded schedule enumeration.
        for bound in 0..=config.preempt_bound {
            for idx in 0..config.systematic {
                let mut sched = BoundedSched::new(idx as u64, bound);
                let out = (fixture.run)(discipline, &mut sched);
                schedules += 1;
                if let Some(detail) = check_outcome(&out, &model, model_deadlock) {
                    return Err(fail(
                        fixture,
                        discipline,
                        format!("systematic schedule (index {idx}, bound {bound}): {detail}"),
                        out.run.decisions,
                        &model,
                        model_deadlock,
                    ));
                }
                observe(&out, &mut outputs, &mut deadlocks, &mut witness);
            }
        }

        // Random phase.
        for iter in 0..config.iters {
            let seed = derive_seed(config.seed, fixture.name, discipline, iter);
            let mut sched = RandomSched::new(seed);
            let out = (fixture.run)(discipline, &mut sched);
            schedules += 1;
            if let Some(detail) = check_outcome(&out, &model, model_deadlock) {
                return Err(fail(
                    fixture,
                    discipline,
                    format!("random schedule (seed {seed:#x}): {detail}"),
                    out.run.decisions,
                    &model,
                    model_deadlock,
                ));
            }
            observe(&out, &mut outputs, &mut deadlocks, &mut witness);
        }

        // Event-level membership: one passing observation, re-asked as
        // an ordered Printed-trace query against the explorer.
        if let Some(obs) = &witness {
            let trace: Vec<EventPattern> = obs
                .split_whitespace()
                .map(|tok| EventPattern::any(EventKindPattern::Printed { text: tok.to_string() }))
                .collect();
            let answer = session
                .admits_trace(&trace)
                .map_err(|e| model_err(format!("admits_trace failed: {e}")))?;
            if !answer.is_yes() {
                return Err(model_err(format!(
                    "trace {obs:?} accepted by output oracle but rejected by admits_trace \
                     ({})",
                    discipline.label()
                )));
            }
        }

        per_discipline.push(DisciplineReport { discipline, schedules, outputs, deadlocks });
    }

    // Cross-model agreement: every discipline saw exactly the model's
    // output set (memberships were already enforced per-run, so a
    // mismatch here means a discipline failed to *reach* some model
    // output with the configured budget).
    if config.check_agreement {
        for report in &per_discipline {
            if report.outputs != model_outputs {
                let missing: Vec<_> = model_outputs.difference(&report.outputs).collect();
                return Err(model_err(format!(
                    "cross-model disagreement: {} saw {} of {} model outputs (missing {:?}) \
                     after {} schedules",
                    report.discipline.label(),
                    report.outputs.len(),
                    model_outputs.len(),
                    missing,
                    report.schedules,
                )));
            }
        }
        if fixture.can_deadlock {
            for report in &per_discipline {
                if report.deadlocks == 0 {
                    return Err(model_err(format!(
                        "model deadlocks but {} never did in {} schedules",
                        report.discipline.label(),
                        report.schedules,
                    )));
                }
            }
        }
    }

    Ok(ProblemReport { name: fixture.name, model_outputs, model_deadlock, per_discipline })
}

/// Fuzz every fixture. Returns per-problem reports, or the first
/// conformance failure.
pub fn fuzz_all(config: &FuzzConfig) -> Result<Vec<ProblemReport>, ConformanceError> {
    FIXTURES.iter().map(|f| fuzz_problem(f, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumped_artifacts_parse_back_as_universal_trace_artifacts() {
        let art = TraceArtifact::from_picks("p", "threads", "boom", &[1, 0, 2]);
        let parsed = TraceArtifact::parse(&art.render()).expect("round-trips");
        assert_eq!(parsed.decisions, vec![1, 0, 2]);
    }

    #[test]
    fn derived_seeds_differ_across_iterations_and_disciplines() {
        let a = derive_seed(1, "dining", Discipline::Threads, 0);
        let b = derive_seed(1, "dining", Discipline::Threads, 1);
        let c = derive_seed(1, "dining", Discipline::Actors, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn schedules_per_discipline_meets_the_budget_floor() {
        assert!(FuzzConfig::default().schedules_per_discipline() >= 1000);
    }
}
