//! The classical problems on the controlled executor, in all four
//! programming models.
//!
//! Every fixture pairs a pseudocode model from [`crate::models`] with a
//! `run` function that executes the same problem under a
//! scheduler-controlled [`Harness`] in one of four disciplines:
//!
//! * **Threads** — fine-grained preemption: a modelled lock
//!   ([`Mon`] with [`Disc::Fine`]) serializes critical sections, and
//!   scheduling points sit at every lock operation;
//! * **Coroutines** — cooperative: sections are atomic, control moves
//!   only at explicit yield/block points ([`Disc::Coop`]);
//! * **Actors** — message passing: shared state lives inside an actor
//!   task, and the scheduler picks mailbox delivery order through
//!   [`SimBox`];
//! * **Tasks** — async/await on the `concur-tasks` executor: the same
//!   cooperative granularity as coroutines (suspension only at
//!   explicit `.await` points), but scheduled by polling futures, with
//!   every poll-order choice a [`concur_decide::DecisionKind::Poll`]
//!   decision from the same kernel.
//!
//! Each run produces an [`Outcome`]: the recorded decision vector (for
//! replay), the observation string (same token vocabulary as the
//! model's printed output), and any violation found by the
//! corresponding `concur-problems` validator on the typed event log
//! the run collected along the way.

use crate::exec::{Harness, Run, Sched};
use crate::models;
use crate::sim::SimBox;
use crate::sync::{Disc, Mon, Recorder, Shared};
use concur_problems::{
    book_inventory, bounded_buffer, bridge, dining, party_matching, readers_writers,
    sleeping_barber, thread_pool_arith,
};
use concur_tasks as tasks;
use std::collections::{BTreeMap, VecDeque};

/// Which programming model a controlled run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Discipline {
    Threads,
    Actors,
    Coroutines,
    Tasks,
}

impl Discipline {
    pub const ALL: [Discipline; 4] =
        [Discipline::Threads, Discipline::Actors, Discipline::Coroutines, Discipline::Tasks];

    pub fn label(self) -> &'static str {
        match self {
            Discipline::Threads => "threads",
            Discipline::Actors => "actors",
            Discipline::Coroutines => "coroutines",
            Discipline::Tasks => "tasks",
        }
    }
}

fn disc(d: Discipline) -> Disc {
    match d {
        Discipline::Threads => Disc::Fine,
        Discipline::Coroutines => Disc::Coop,
        Discipline::Actors => unreachable!("actors use mailboxes, not monitors"),
        Discipline::Tasks => unreachable!("tasks use the async executor, not monitors"),
    }
}

/// Drive a fully-spawned task executor and adapt its report to the
/// harness's [`Run`] shape (field-for-field identical, so the fuzz
/// oracle treats all four disciplines uniformly).
fn tasks_run(exec: tasks::Executor, sched: &mut dyn Sched) -> Run {
    let r = exec.run(sched);
    Run {
        deadlocked: r.deadlocked,
        diverged: r.diverged,
        decisions: r.decisions,
        trace: r.trace,
        steps: r.steps,
    }
}

/// Result of one controlled run of one fixture under one discipline.
pub struct Outcome {
    pub run: Run,
    /// Observation string (model output vocabulary); `None` when the
    /// run deadlocked or diverged, in which case there is no terminal
    /// observation to check.
    pub obs: Option<String>,
    /// Violation reported by the problem's invariant validator, if any.
    pub violation: Option<String>,
}

fn outcome(run: Run, rec: &Recorder, violation: Option<String>) -> Outcome {
    let obs = if run.deadlocked || run.diverged { None } else { Some(rec.render()) };
    Outcome { run, obs, violation }
}

/// A classical problem: its pseudocode model plus its controlled
/// runtime implementations.
pub struct Fixture {
    pub name: &'static str,
    pub model: &'static str,
    /// Whether the model admits a deadlock (checked against the
    /// explorer, and the only condition under which a deadlocked
    /// runtime run is accepted).
    pub can_deadlock: bool,
    pub run: fn(Discipline, &mut dyn Sched) -> Outcome,
}

pub static FIXTURES: &[Fixture] = &[
    Fixture {
        name: "dining_ordered",
        model: models::DINING_ORDERED,
        can_deadlock: false,
        run: run_dining_ordered,
    },
    Fixture {
        name: "dining_naive",
        model: models::DINING_NAIVE,
        can_deadlock: true,
        run: run_dining_naive,
    },
    Fixture {
        name: "bounded_buffer",
        model: models::BOUNDED_BUFFER,
        can_deadlock: false,
        run: run_bounded_buffer,
    },
    Fixture {
        name: "readers_writers",
        model: models::READERS_WRITERS,
        can_deadlock: false,
        run: run_readers_writers,
    },
    Fixture {
        name: "sleeping_barber",
        model: models::SLEEPING_BARBER,
        can_deadlock: false,
        run: run_sleeping_barber,
    },
    Fixture { name: "bridge", model: models::BRIDGE, can_deadlock: false, run: run_bridge },
    Fixture {
        name: "party_matching",
        model: models::PARTY_MATCHING,
        can_deadlock: false,
        run: run_party_matching,
    },
    Fixture {
        name: "book_inventory",
        model: models::BOOK_INVENTORY,
        can_deadlock: false,
        run: run_book_inventory,
    },
    Fixture {
        name: "sum_workers",
        model: models::SUM_WORKERS,
        can_deadlock: false,
        run: run_sum_workers,
    },
    Fixture {
        name: "thread_pool",
        model: models::THREAD_POOL,
        can_deadlock: false,
        run: run_thread_pool,
    },
];

// --- dining philosophers ----------------------------------------------------

fn run_dining_ordered(d: Discipline, sched: &mut dyn Sched) -> Outcome {
    dining_fixture(d, sched, false)
}

fn run_dining_naive(d: Discipline, sched: &mut dyn Sched) -> Outcome {
    dining_fixture(d, sched, true)
}

fn dining_fixture(d: Discipline, sched: &mut dyn Sched, naive: bool) -> Outcome {
    let rec = Recorder::new();
    let events: Shared<Vec<dining::Event>> = Shared::new(Vec::new());
    // (token, seat, first fork, second fork)
    let seats: [(i64, usize, usize, usize); 2] =
        if naive { [(1, 0, 0, 1), (2, 1, 1, 0)] } else { [(1, 0, 0, 1), (2, 1, 0, 1)] };

    let run = match d {
        Discipline::Actors => {
            // One actor per fork with a grant queue: Take requests
            // carry the philosopher's reply box; the fork grants one,
            // then waits for the matching Put before granting again.
            let mut h = Harness::new();
            let takes: Vec<SimBox<SimBox<u8>>> = vec![SimBox::new(), SimBox::new()];
            let puts: Vec<SimBox<u8>> = vec![SimBox::new(), SimBox::new()];
            for f in 0..2 {
                let takes = takes[f].clone();
                let puts = puts[f].clone();
                h.spawn(move |ctx| {
                    for _ in 0..2 {
                        let grant = takes.recv(ctx);
                        grant.send(0);
                        puts.recv(ctx);
                    }
                });
            }
            for (token, seat, first, second) in seats {
                let take_a = takes[first].clone();
                let take_b = takes[second].clone();
                let put_a = puts[first].clone();
                let put_b = puts[second].clone();
                let rec = rec.clone();
                let events = events.clone();
                h.spawn(move |ctx| {
                    let grant: SimBox<u8> = SimBox::new();
                    take_a.send(grant.clone());
                    grant.recv(ctx);
                    take_b.send(grant.clone());
                    grant.recv(ctx);
                    events.with(|e| e.push(dining::Event::StartedEating(seat)));
                    rec.push(token);
                    ctx.pause();
                    events.with(|e| e.push(dining::Event::FinishedEating(seat)));
                    put_b.send(0);
                    put_a.send(0);
                });
            }
            h.run(sched)
        }
        Discipline::Tasks => {
            // Same shape as the cooperative arm: a yield before every
            // atomic section, a park while a wanted fork is taken.
            let exec = tasks::Executor::new();
            let forks: Shared<Vec<bool>> = Shared::new(vec![false, false]);
            for (token, seat, first, second) in seats {
                let forks = forks.clone();
                let rec = rec.clone();
                let events = events.clone();
                exec.spawn("philosopher", move |ctx: tasks::Ctx| async move {
                    for i in [first, second] {
                        let pf = forks.clone();
                        ctx.yield_now().await;
                        ctx.wait_until(move || !pf.with(|v| v[i])).await;
                        forks.with(|v| v[i] = true);
                    }
                    ctx.yield_now().await;
                    events.with(|e| e.push(dining::Event::StartedEating(seat)));
                    rec.push(token);
                    ctx.yield_now().await;
                    events.with(|e| e.push(dining::Event::FinishedEating(seat)));
                    for i in [second, first] {
                        ctx.yield_now().await;
                        forks.with(|v| v[i] = false);
                    }
                });
            }
            tasks_run(exec, sched)
        }
        _ => {
            let mon = Mon::new(disc(d));
            let forks: Shared<Vec<bool>> = Shared::new(vec![false, false]);
            let mut h = Harness::new();
            for (token, seat, first, second) in seats {
                let mon = mon.clone();
                let forks = forks.clone();
                let rec = rec.clone();
                let events = events.clone();
                h.spawn(move |ctx| {
                    for i in [first, second] {
                        let pf = forks.clone();
                        let sf = forks.clone();
                        mon.section_when(
                            ctx,
                            move || !pf.with(|v| v[i]),
                            move || sf.with(|v| v[i] = true),
                        );
                    }
                    let ev = events.clone();
                    let rc = rec.clone();
                    mon.section(ctx, move || {
                        ev.with(|e| e.push(dining::Event::StartedEating(seat)));
                        rc.push(token);
                    });
                    let ev = events.clone();
                    mon.section(ctx, move || {
                        ev.with(|e| e.push(dining::Event::FinishedEating(seat)));
                    });
                    for i in [second, first] {
                        let sf = forks.clone();
                        mon.section(ctx, move || sf.with(|v| v[i] = false));
                    }
                });
            }
            h.run(sched)
        }
    };

    let config = dining::Config { philosophers: 2, meals_per_philosopher: 1 };
    let violation = if run.deadlocked || run.diverged {
        None
    } else {
        events.with(|e| dining::validate(e, config).err().map(|v| v.to_string()))
    };
    outcome(run, &rec, violation)
}

// --- bounded buffer ---------------------------------------------------------

enum BufMsg {
    Put(i64, bounded_buffer::Item, SimBox<u8>),
    Take(SimBox<i64>),
}

fn run_bounded_buffer(d: Discipline, sched: &mut dyn Sched) -> Outcome {
    const CAP: usize = 1;
    let rec = Recorder::new();
    let events: Shared<Vec<bounded_buffer::Event>> = Shared::new(Vec::new());

    let run = match d {
        Discipline::Actors => {
            let boxed: SimBox<BufMsg> = SimBox::new();
            let mut h = Harness::new();
            {
                let boxed = boxed.clone();
                let events = events.clone();
                h.spawn(move |ctx| {
                    let mut items: VecDeque<(i64, bounded_buffer::Item)> = VecDeque::new();
                    let mut pending_puts: Vec<(i64, bounded_buffer::Item, SimBox<u8>)> = Vec::new();
                    let mut pending_takes: Vec<SimBox<i64>> = Vec::new();
                    for _ in 0..8 {
                        match boxed.recv(ctx) {
                            BufMsg::Put(tok, item, ack) => pending_puts.push((tok, item, ack)),
                            BufMsg::Take(reply) => pending_takes.push(reply),
                        }
                        loop {
                            let mut progressed = false;
                            if !pending_takes.is_empty() && !items.is_empty() {
                                let reply = pending_takes.remove(0);
                                let (tok, item) = items.pop_front().expect("non-empty");
                                events.with(|e| e.push(bounded_buffer::Event::Consumed(item)));
                                reply.send(tok);
                                progressed = true;
                            }
                            if items.len() < CAP && !pending_puts.is_empty() {
                                let i = ctx.choose(pending_puts.len());
                                let (tok, item, ack) = pending_puts.remove(i);
                                items.push_back((tok, item));
                                events.with(|e| e.push(bounded_buffer::Event::Produced(item)));
                                ack.send(0);
                                progressed = true;
                            }
                            if !progressed {
                                break;
                            }
                        }
                    }
                });
            }
            for p in 0..2usize {
                let boxed = boxed.clone();
                h.spawn(move |ctx| {
                    for s in 0..2usize {
                        let token = (10 * (p + 1) + s + 1) as i64;
                        let item = bounded_buffer::Item { producer: p, seq: s };
                        let ack: SimBox<u8> = SimBox::new();
                        boxed.send(BufMsg::Put(token, item, ack.clone()));
                        ack.recv(ctx);
                    }
                });
            }
            {
                let boxed = boxed.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| {
                    for _ in 0..4 {
                        let reply: SimBox<i64> = SimBox::new();
                        boxed.send(BufMsg::Take(reply.clone()));
                        let tok = reply.recv(ctx);
                        rec.push(tok);
                    }
                });
            }
            h.run(sched)
        }
        Discipline::Tasks => {
            let exec = tasks::Executor::new();
            let buf: Shared<VecDeque<(i64, bounded_buffer::Item)>> = Shared::new(VecDeque::new());
            for p in 0..2usize {
                let buf = buf.clone();
                let events = events.clone();
                exec.spawn("producer", move |ctx: tasks::Ctx| async move {
                    for s in 0..2usize {
                        let token = (10 * (p + 1) + s + 1) as i64;
                        let item = bounded_buffer::Item { producer: p, seq: s };
                        let pb = buf.clone();
                        ctx.yield_now().await;
                        ctx.wait_until(move || pb.with(|b| b.len() < CAP)).await;
                        buf.with(|b| b.push_back((token, item)));
                        events.with(|e| e.push(bounded_buffer::Event::Produced(item)));
                    }
                });
            }
            {
                let buf = buf.clone();
                let events = events.clone();
                let rec = rec.clone();
                exec.spawn("consumer", move |ctx: tasks::Ctx| async move {
                    for _ in 0..4 {
                        let pb = buf.clone();
                        ctx.yield_now().await;
                        ctx.wait_until(move || pb.with(|b| !b.is_empty())).await;
                        let (tok, item) = buf.with(|b| b.pop_front().expect("non-empty"));
                        events.with(|e| e.push(bounded_buffer::Event::Consumed(item)));
                        rec.push(tok);
                    }
                });
            }
            tasks_run(exec, sched)
        }
        _ => {
            let mon = Mon::new(disc(d));
            let buf: Shared<VecDeque<(i64, bounded_buffer::Item)>> = Shared::new(VecDeque::new());
            let mut h = Harness::new();
            for p in 0..2usize {
                let mon = mon.clone();
                let buf = buf.clone();
                let events = events.clone();
                h.spawn(move |ctx| {
                    for s in 0..2usize {
                        let token = (10 * (p + 1) + s + 1) as i64;
                        let item = bounded_buffer::Item { producer: p, seq: s };
                        let pb = buf.clone();
                        let sb = buf.clone();
                        let ev = events.clone();
                        mon.section_when(
                            ctx,
                            move || pb.with(|b| b.len() < CAP),
                            move || {
                                sb.with(|b| b.push_back((token, item)));
                                ev.with(|e| e.push(bounded_buffer::Event::Produced(item)));
                            },
                        );
                    }
                });
            }
            {
                let mon = mon.clone();
                let buf = buf.clone();
                let events = events.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| {
                    for _ in 0..4 {
                        let pb = buf.clone();
                        let sb = buf.clone();
                        let ev = events.clone();
                        let token = mon.section_when(
                            ctx,
                            move || pb.with(|b| !b.is_empty()),
                            move || {
                                let (tok, item) = sb.with(|b| b.pop_front().expect("non-empty"));
                                ev.with(|e| e.push(bounded_buffer::Event::Consumed(item)));
                                tok
                            },
                        );
                        rec.push(token);
                    }
                });
            }
            h.run(sched)
        }
    };

    let config =
        bounded_buffer::Config { producers: 2, consumers: 1, items_per_producer: 2, capacity: CAP };
    let violation = if run.deadlocked || run.diverged {
        None
    } else {
        events.with(|e| bounded_buffer::validate(e, config).err().map(|v| v.to_string()))
    };
    outcome(run, &rec, violation)
}

// --- readers-writers --------------------------------------------------------

enum RwMsg {
    Get(SimBox<u64>),
    Inc(SimBox<u64>),
}

fn run_readers_writers(d: Discipline, sched: &mut dyn Sched) -> Outcome {
    let rec = Recorder::new();
    let events: Shared<Vec<readers_writers::Event>> = Shared::new(Vec::new());

    let run = match d {
        Discipline::Actors => {
            let boxed: SimBox<RwMsg> = SimBox::new();
            let mut h = Harness::new();
            {
                let boxed = boxed.clone();
                h.spawn(move |ctx| {
                    let mut version = 0u64;
                    for _ in 0..3 {
                        match boxed.recv(ctx) {
                            RwMsg::Get(reply) => reply.send(version),
                            RwMsg::Inc(reply) => {
                                version += 1;
                                reply.send(version);
                            }
                        }
                    }
                });
            }
            for task in 0..2usize {
                let boxed = boxed.clone();
                let events = events.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| {
                    events.with(|e| e.push(readers_writers::Event::ReadStart { task }));
                    let reply: SimBox<u64> = SimBox::new();
                    boxed.send(RwMsg::Get(reply.clone()));
                    let seen = reply.recv(ctx);
                    // Logging the read is a separate step, as in the
                    // real runtimes (the log entry lags the read).
                    ctx.pause();
                    events
                        .with(|e| e.push(readers_writers::Event::ReadEnd { task, version: seen }));
                    rec.push(seen as i64);
                });
            }
            {
                let boxed = boxed.clone();
                let events = events.clone();
                h.spawn(move |ctx| {
                    events.with(|e| e.push(readers_writers::Event::WriteStart { task: 2 }));
                    let reply: SimBox<u64> = SimBox::new();
                    boxed.send(RwMsg::Inc(reply.clone()));
                    let v = reply.recv(ctx);
                    events
                        .with(|e| e.push(readers_writers::Event::WriteEnd { task: 2, version: v }));
                });
            }
            h.run(sched)
        }
        Discipline::Tasks => {
            let exec = tasks::Executor::new();
            let version: Shared<u64> = Shared::new(0);
            for task in 0..2usize {
                let version = version.clone();
                let events = events.clone();
                let rec = rec.clone();
                exec.spawn("reader", move |ctx: tasks::Ctx| async move {
                    ctx.yield_now().await;
                    events.with(|e| e.push(readers_writers::Event::ReadStart { task }));
                    let seen = version.with(|v| *v);
                    ctx.yield_now().await;
                    events
                        .with(|e| e.push(readers_writers::Event::ReadEnd { task, version: seen }));
                    rec.push(seen as i64);
                });
            }
            {
                let version = version.clone();
                let events = events.clone();
                exec.spawn("writer", move |ctx: tasks::Ctx| async move {
                    ctx.yield_now().await;
                    events.with(|e| e.push(readers_writers::Event::WriteStart { task: 2 }));
                    let nv = version.with(|v| {
                        *v += 1;
                        *v
                    });
                    events.with(|e| {
                        e.push(readers_writers::Event::WriteEnd { task: 2, version: nv })
                    });
                });
            }
            tasks_run(exec, sched)
        }
        _ => {
            let mon = Mon::new(disc(d));
            let version: Shared<u64> = Shared::new(0);
            let mut h = Harness::new();
            for task in 0..2usize {
                let mon = mon.clone();
                let version = version.clone();
                let events = events.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| {
                    let ev = events.clone();
                    let vr = version.clone();
                    let seen = mon.section(ctx, move || {
                        ev.with(|e| e.push(readers_writers::Event::ReadStart { task }));
                        vr.with(|v| *v)
                    });
                    let ev = events.clone();
                    let rc = rec.clone();
                    mon.section(ctx, move || {
                        ev.with(|e| {
                            e.push(readers_writers::Event::ReadEnd { task, version: seen })
                        });
                        rc.push(seen as i64);
                    });
                });
            }
            {
                let mon = mon.clone();
                let version = version.clone();
                let events = events.clone();
                h.spawn(move |ctx| {
                    let ev = events.clone();
                    mon.section(ctx, move || {
                        ev.with(|e| e.push(readers_writers::Event::WriteStart { task: 2 }));
                        let nv = version.with(|v| {
                            *v += 1;
                            *v
                        });
                        ev.with(|e| {
                            e.push(readers_writers::Event::WriteEnd { task: 2, version: nv })
                        });
                    });
                });
            }
            h.run(sched)
        }
    };

    let config = readers_writers::Config { readers: 2, writers: 1, ops_per_task: 1 };
    let violation = if run.deadlocked || run.diverged {
        None
    } else {
        events.with(|e| readers_writers::validate(e, config).err().map(|v| v.to_string()))
    };
    outcome(run, &rec, violation)
}

// --- sleeping barber --------------------------------------------------------

fn run_sleeping_barber(d: Discipline, sched: &mut dyn Sched) -> Outcome {
    const CUSTOMERS: i64 = 2;
    let rec = Recorder::new();
    let events: Shared<Vec<sleeping_barber::Event>> = Shared::new(Vec::new());

    let run = match d {
        Discipline::Actors => {
            // The single waiting chair is a bounded mailbox: a customer
            // checks its length atomically on arrival, and the barber
            // pops from it to cut.
            let chair: SimBox<(usize, SimBox<u8>)> = SimBox::new();
            let handled: Shared<i64> = Shared::new(0);
            let mut h = Harness::new();
            {
                let chair = chair.clone();
                let handled = handled.clone();
                let events = events.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| loop {
                    let cb = chair.clone();
                    let hb = handled.clone();
                    ctx.block_until(move || !cb.is_empty() || hb.with(|h| *h >= CUSTOMERS));
                    if chair.is_empty() {
                        break;
                    }
                    let (c, reply) = chair.recv(ctx);
                    events.with(|e| {
                        e.push(sleeping_barber::Event::CutStarted { customer: c, barber: 0 })
                    });
                    rec.push(10 + c as i64);
                    events.with(|e| {
                        e.push(sleeping_barber::Event::CutFinished { customer: c, barber: 0 })
                    });
                    handled.with(|h| *h += 1);
                    reply.send(0);
                });
            }
            for id in 0..2usize {
                let chair = chair.clone();
                let handled = handled.clone();
                let events = events.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| {
                    ctx.pause();
                    events.with(|e| e.push(sleeping_barber::Event::Arrived(id)));
                    if chair.is_empty() {
                        events.with(|e| e.push(sleeping_barber::Event::SatDown(id)));
                        let reply: SimBox<u8> = SimBox::new();
                        chair.send((id, reply.clone()));
                        reply.recv(ctx);
                    } else {
                        handled.with(|h| *h += 1);
                        events.with(|e| e.push(sleeping_barber::Event::TurnedAway(id)));
                        rec.push(20 + id as i64);
                    }
                });
            }
            h.run(sched)
        }
        Discipline::Tasks => {
            let exec = tasks::Executor::new();
            let waiting: Shared<VecDeque<usize>> = Shared::new(VecDeque::new());
            let done: Shared<Vec<bool>> = Shared::new(vec![false, false]);
            let handled: Shared<i64> = Shared::new(0);
            {
                let waiting = waiting.clone();
                let done = done.clone();
                let handled = handled.clone();
                let events = events.clone();
                let rec = rec.clone();
                exec.spawn("barber", move |ctx: tasks::Ctx| async move {
                    loop {
                        let wp = waiting.clone();
                        let hp = handled.clone();
                        ctx.yield_now().await;
                        ctx.wait_until(move || {
                            wp.with(|w| !w.is_empty()) || hp.with(|h| *h >= CUSTOMERS)
                        })
                        .await;
                        let Some(c) = waiting.with(|w| w.pop_front()) else { break };
                        handled.with(|h| *h += 1);
                        events.with(|e| {
                            e.push(sleeping_barber::Event::CutStarted { customer: c, barber: 0 })
                        });
                        rec.push(10 + c as i64);
                        events.with(|e| {
                            e.push(sleeping_barber::Event::CutFinished { customer: c, barber: 0 })
                        });
                        done.with(|d| d[c] = true);
                    }
                });
            }
            for id in 0..2usize {
                let waiting = waiting.clone();
                let done = done.clone();
                let handled = handled.clone();
                let events = events.clone();
                let rec = rec.clone();
                exec.spawn("customer", move |ctx: tasks::Ctx| async move {
                    ctx.yield_now().await;
                    events.with(|e| e.push(sleeping_barber::Event::Arrived(id)));
                    let seated = if waiting.with(|w| w.len()) < 1 {
                        waiting.with(|w| w.push_back(id));
                        events.with(|e| e.push(sleeping_barber::Event::SatDown(id)));
                        true
                    } else {
                        handled.with(|h| *h += 1);
                        events.with(|e| e.push(sleeping_barber::Event::TurnedAway(id)));
                        rec.push(20 + id as i64);
                        false
                    };
                    if seated {
                        let dn = done.clone();
                        ctx.yield_now().await;
                        ctx.wait_until(move || dn.with(|d| d[id])).await;
                    }
                });
            }
            tasks_run(exec, sched)
        }
        _ => {
            let mon = Mon::new(disc(d));
            let waiting: Shared<VecDeque<usize>> = Shared::new(VecDeque::new());
            let done: Shared<Vec<bool>> = Shared::new(vec![false, false]);
            let handled: Shared<i64> = Shared::new(0);
            let mut h = Harness::new();
            {
                let mon = mon.clone();
                let waiting = waiting.clone();
                let done = done.clone();
                let handled = handled.clone();
                let events = events.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| loop {
                    let wp = waiting.clone();
                    let hp = handled.clone();
                    let wq = waiting.clone();
                    let dn = done.clone();
                    let hd = handled.clone();
                    let ev = events.clone();
                    let rc = rec.clone();
                    let closed = mon.section_when(
                        ctx,
                        move || wp.with(|w| !w.is_empty()) || hp.with(|h| *h >= CUSTOMERS),
                        move || {
                            if let Some(c) = wq.with(|w| w.pop_front()) {
                                hd.with(|h| *h += 1);
                                ev.with(|e| {
                                    e.push(sleeping_barber::Event::CutStarted {
                                        customer: c,
                                        barber: 0,
                                    })
                                });
                                rc.push(10 + c as i64);
                                ev.with(|e| {
                                    e.push(sleeping_barber::Event::CutFinished {
                                        customer: c,
                                        barber: 0,
                                    })
                                });
                                dn.with(|d| d[c] = true);
                                false
                            } else {
                                true
                            }
                        },
                    );
                    if closed {
                        break;
                    }
                });
            }
            for id in 0..2usize {
                let mon = mon.clone();
                let waiting = waiting.clone();
                let done = done.clone();
                let handled = handled.clone();
                let events = events.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| {
                    let wq = waiting.clone();
                    let hd = handled.clone();
                    let ev = events.clone();
                    let rc = rec.clone();
                    let seated = mon.section(ctx, move || {
                        ev.with(|e| e.push(sleeping_barber::Event::Arrived(id)));
                        if wq.with(|w| w.len()) < 1 {
                            wq.with(|w| w.push_back(id));
                            ev.with(|e| e.push(sleeping_barber::Event::SatDown(id)));
                            true
                        } else {
                            hd.with(|h| *h += 1);
                            ev.with(|e| e.push(sleeping_barber::Event::TurnedAway(id)));
                            rc.push(20 + id as i64);
                            false
                        }
                    });
                    if seated {
                        let dn = done.clone();
                        mon.section_when(ctx, move || dn.with(|d| d[id]), || {});
                    }
                });
            }
            h.run(sched)
        }
    };

    let config = sleeping_barber::Config { barbers: 1, chairs: 1, customers: 2 };
    let violation = if run.deadlocked || run.diverged {
        None
    } else {
        events.with(|e| sleeping_barber::validate(e, config).err().map(|v| v.to_string()))
    };
    outcome(run, &rec, violation)
}

// --- one-lane bridge --------------------------------------------------------

enum BrMsg {
    Enter { car: usize, d: i64, reply: SimBox<u8> },
    Exit { car: usize, d: i64 },
}

fn to_dir(d: i64) -> bridge::Dir {
    if d == 1 {
        bridge::Dir::Red
    } else {
        bridge::Dir::Blue
    }
}

fn run_bridge(d: Discipline, sched: &mut dyn Sched) -> Outcome {
    let rec = Recorder::new();
    let events: Shared<Vec<bridge::Event>> = Shared::new(Vec::new());
    // (car id, direction token): two red (1), one blue (2)
    let cars: [(usize, i64); 3] = [(0, 1), (1, 1), (2, 2)];

    let run = match d {
        Discipline::Actors => {
            let boxed: SimBox<BrMsg> = SimBox::new();
            let mut h = Harness::new();
            {
                let boxed = boxed.clone();
                let events = events.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| {
                    let mut cars_on = 0i64;
                    let mut dir = 0i64;
                    let mut pending: Vec<(usize, i64, SimBox<u8>)> = Vec::new();
                    for _ in 0..6 {
                        match boxed.recv(ctx) {
                            BrMsg::Enter { car, d, reply } => pending.push((car, d, reply)),
                            BrMsg::Exit { car, d } => {
                                cars_on -= 1;
                                events.with(|e| {
                                    e.push(bridge::Event::Exited { car, dir: to_dir(d) })
                                });
                            }
                        }
                        // Grant every currently-admissible request, in
                        // a scheduler-chosen order.
                        loop {
                            let eligible: Vec<usize> = pending
                                .iter()
                                .enumerate()
                                .filter(|(_, &(_, pd, _))| cars_on == 0 || pd == dir)
                                .map(|(i, _)| i)
                                .collect();
                            if eligible.is_empty() {
                                break;
                            }
                            let pick = eligible[ctx.choose(eligible.len())];
                            let (car, pd, reply) = pending.remove(pick);
                            dir = pd;
                            cars_on += 1;
                            events
                                .with(|e| e.push(bridge::Event::Entered { car, dir: to_dir(pd) }));
                            rec.push(pd);
                            reply.send(0);
                        }
                    }
                });
            }
            for (car, dtok) in cars {
                let boxed = boxed.clone();
                h.spawn(move |ctx| {
                    let reply: SimBox<u8> = SimBox::new();
                    boxed.send(BrMsg::Enter { car, d: dtok, reply: reply.clone() });
                    reply.recv(ctx);
                    ctx.pause();
                    boxed.send(BrMsg::Exit { car, d: dtok });
                });
            }
            h.run(sched)
        }
        Discipline::Tasks => {
            let exec = tasks::Executor::new();
            let cars_on: Shared<i64> = Shared::new(0);
            let dir: Shared<i64> = Shared::new(0);
            for (car, dtok) in cars {
                let cars_on = cars_on.clone();
                let dir = dir.clone();
                let events = events.clone();
                let rec = rec.clone();
                exec.spawn("car", move |ctx: tasks::Ctx| async move {
                    let cp = cars_on.clone();
                    let dp = dir.clone();
                    ctx.yield_now().await;
                    ctx.wait_until(move || cp.with(|c| *c == 0) || dp.with(|v| *v == dtok)).await;
                    dir.with(|v| *v = dtok);
                    cars_on.with(|c| *c += 1);
                    events.with(|e| e.push(bridge::Event::Entered { car, dir: to_dir(dtok) }));
                    rec.push(dtok);
                    ctx.yield_now().await;
                    cars_on.with(|c| *c -= 1);
                    events.with(|e| e.push(bridge::Event::Exited { car, dir: to_dir(dtok) }));
                });
            }
            tasks_run(exec, sched)
        }
        _ => {
            let mon = Mon::new(disc(d));
            let cars_on: Shared<i64> = Shared::new(0);
            let dir: Shared<i64> = Shared::new(0);
            let mut h = Harness::new();
            for (car, dtok) in cars {
                let mon = mon.clone();
                let cars_on = cars_on.clone();
                let dir = dir.clone();
                let events = events.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| {
                    let cp = cars_on.clone();
                    let dp = dir.clone();
                    let cs = cars_on.clone();
                    let ds = dir.clone();
                    let ev = events.clone();
                    let rc = rec.clone();
                    mon.section_when(
                        ctx,
                        move || cp.with(|c| *c == 0) || dp.with(|v| *v == dtok),
                        move || {
                            ds.with(|v| *v = dtok);
                            cs.with(|c| *c += 1);
                            ev.with(|e| e.push(bridge::Event::Entered { car, dir: to_dir(dtok) }));
                            rc.push(dtok);
                        },
                    );
                    let cs = cars_on.clone();
                    let ev = events.clone();
                    mon.section(ctx, move || {
                        cs.with(|c| *c -= 1);
                        ev.with(|e| e.push(bridge::Event::Exited { car, dir: to_dir(dtok) }));
                    });
                });
            }
            h.run(sched)
        }
    };

    let config =
        bridge::Config { red_cars: 2, blue_cars: 1, crossings_per_car: 1, fair_batch: None };
    let violation = if run.deadlocked || run.diverged {
        None
    } else {
        events.with(|e| bridge::validate(e, config).err().map(|v| v.to_string()))
    };
    outcome(run, &rec, violation)
}

// --- party matching ---------------------------------------------------------

struct PartyArrive {
    sex: party_matching::Sex,
    id: usize,
    reply: SimBox<u8>,
}

fn run_party_matching(d: Discipline, sched: &mut dyn Sched) -> Outcome {
    use party_matching::{Event, Guest, Sex};
    let rec = Recorder::new();
    let events: Shared<Vec<Event>> = Shared::new(Vec::new());
    let guests: [(Sex, usize); 4] = [(Sex::Boy, 0), (Sex::Boy, 1), (Sex::Girl, 0), (Sex::Girl, 1)];
    let token = |b: usize, g: usize| ((b + 1) * 10 + g + 1) as i64;

    let run =
        match d {
            Discipline::Actors => {
                let boxed: SimBox<PartyArrive> = SimBox::new();
                let mut h = Harness::new();
                {
                    let boxed = boxed.clone();
                    let events = events.clone();
                    let rec = rec.clone();
                    h.spawn(move |ctx| {
                        let mut wait_b: Vec<(usize, SimBox<u8>)> = Vec::new();
                        let mut wait_g: Vec<(usize, SimBox<u8>)> = Vec::new();
                        for _ in 0..4 {
                            let m = boxed.recv(ctx);
                            events.with(|e| e.push(Event::Arrived(Guest { sex: m.sex, id: m.id })));
                            match m.sex {
                                Sex::Boy => {
                                    if wait_g.is_empty() {
                                        wait_b.push((m.id, m.reply));
                                    } else {
                                        let (g, greply) = wait_g.remove(0);
                                        events.with(|e| {
                                            e.push(Event::LeftTogether { boy: m.id, girl: g })
                                        });
                                        rec.push(token(m.id, g));
                                        m.reply.send(0);
                                        greply.send(0);
                                    }
                                }
                                Sex::Girl => {
                                    if wait_b.is_empty() {
                                        wait_g.push((m.id, m.reply));
                                    } else {
                                        let (b, breply) = wait_b.remove(0);
                                        events.with(|e| {
                                            e.push(Event::LeftTogether { boy: b, girl: m.id })
                                        });
                                        rec.push(token(b, m.id));
                                        m.reply.send(0);
                                        breply.send(0);
                                    }
                                }
                            }
                        }
                    });
                }
                for (sex, id) in guests {
                    let boxed = boxed.clone();
                    h.spawn(move |ctx| {
                        ctx.pause();
                        let reply: SimBox<u8> = SimBox::new();
                        boxed.send(PartyArrive { sex, id, reply: reply.clone() });
                        reply.recv(ctx);
                    });
                }
                h.run(sched)
            }
            Discipline::Tasks => {
                let exec = tasks::Executor::new();
                let wait_b: Shared<Vec<usize>> = Shared::new(Vec::new());
                let wait_g: Shared<Vec<usize>> = Shared::new(Vec::new());
                let left_b: Shared<Vec<bool>> = Shared::new(vec![false, false]);
                let left_g: Shared<Vec<bool>> = Shared::new(vec![false, false]);
                for (sex, id) in guests {
                    let wait_b = wait_b.clone();
                    let wait_g = wait_g.clone();
                    let left_b = left_b.clone();
                    let left_g = left_g.clone();
                    let events = events.clone();
                    let rec = rec.clone();
                    exec.spawn("guest", move |ctx: tasks::Ctx| async move {
                        let (own_wait, other_wait, own_left, other_left) = match sex {
                            Sex::Boy => {
                                (wait_b.clone(), wait_g.clone(), left_b.clone(), left_g.clone())
                            }
                            Sex::Girl => {
                                (wait_g.clone(), wait_b.clone(), left_g.clone(), left_b.clone())
                            }
                        };
                        ctx.yield_now().await;
                        events.with(|e| e.push(Event::Arrived(Guest { sex, id })));
                        let partner =
                            other_wait
                                .with(|w| if w.is_empty() { None } else { Some(w.remove(0)) });
                        match partner {
                            Some(p) => {
                                other_left.with(|l| l[p] = true);
                                own_left.with(|l| l[id] = true);
                                let (b, g) = match sex {
                                    Sex::Boy => (id, p),
                                    Sex::Girl => (p, id),
                                };
                                events.with(|e| e.push(Event::LeftTogether { boy: b, girl: g }));
                                rec.push(token(b, g));
                            }
                            None => own_wait.with(|w| w.push(id)),
                        }
                        let ol = own_left.clone();
                        ctx.yield_now().await;
                        ctx.wait_until(move || ol.with(|l| l[id])).await;
                    });
                }
                tasks_run(exec, sched)
            }
            _ => {
                let mon = Mon::new(disc(d));
                let wait_b: Shared<Vec<usize>> = Shared::new(Vec::new());
                let wait_g: Shared<Vec<usize>> = Shared::new(Vec::new());
                let left_b: Shared<Vec<bool>> = Shared::new(vec![false, false]);
                let left_g: Shared<Vec<bool>> = Shared::new(vec![false, false]);
                let mut h = Harness::new();
                for (sex, id) in guests {
                    let mon = mon.clone();
                    let wait_b = wait_b.clone();
                    let wait_g = wait_g.clone();
                    let left_b = left_b.clone();
                    let left_g = left_g.clone();
                    let events = events.clone();
                    let rec = rec.clone();
                    h.spawn(move |ctx| {
                        let (own_wait, other_wait, own_left, other_left) = match sex {
                            Sex::Boy => {
                                (wait_b.clone(), wait_g.clone(), left_b.clone(), left_g.clone())
                            }
                            Sex::Girl => {
                                (wait_g.clone(), wait_b.clone(), left_g.clone(), left_b.clone())
                            }
                        };
                        let ev = events.clone();
                        let rc = rec.clone();
                        mon.section(ctx, move || {
                            ev.with(|e| e.push(Event::Arrived(Guest { sex, id })));
                            let partner = other_wait.with(|w| {
                                if w.is_empty() {
                                    None
                                } else {
                                    Some(w.remove(0))
                                }
                            });
                            match partner {
                                Some(p) => {
                                    other_left.with(|l| l[p] = true);
                                    own_left.with(|l| l[id] = true);
                                    let (b, g) = match sex {
                                        Sex::Boy => (id, p),
                                        Sex::Girl => (p, id),
                                    };
                                    ev.with(|e| e.push(Event::LeftTogether { boy: b, girl: g }));
                                    rc.push(token(b, g));
                                }
                                None => own_wait.with(|w| w.push(id)),
                            }
                        });
                        let ol = match sex {
                            Sex::Boy => left_b.clone(),
                            Sex::Girl => left_g.clone(),
                        };
                        mon.section_when(ctx, move || ol.with(|l| l[id]), || {});
                    });
                }
                h.run(sched)
            }
        };

    let config = party_matching::Config { boys: 2, girls: 2 };
    let violation = if run.deadlocked || run.diverged {
        None
    } else {
        events.with(|e| party_matching::validate(e, config).err().map(|v| v.to_string()))
    };
    outcome(run, &rec, violation)
}

// --- book inventory ---------------------------------------------------------

enum InvMsg {
    Restock { client: usize },
    Order { client: usize, token: i64, reply: SimBox<u8> },
}

fn run_book_inventory(d: Discipline, sched: &mut dyn Sched) -> Outcome {
    use book_inventory::Event;
    let rec = Recorder::new();
    let events: Shared<Vec<Event>> = Shared::new(Vec::new());
    let final_stock: Shared<i64> = Shared::new(0);

    let run = match d {
        Discipline::Actors => {
            let boxed: SimBox<InvMsg> = SimBox::new();
            let mut h = Harness::new();
            {
                let boxed = boxed.clone();
                let events = events.clone();
                let rec = rec.clone();
                let final_stock = final_stock.clone();
                h.spawn(move |ctx| {
                    let mut stock = 1i64;
                    let mut pending: Vec<(usize, i64, SimBox<u8>)> = Vec::new();
                    for _ in 0..4 {
                        match boxed.recv(ctx) {
                            InvMsg::Restock { client } => {
                                stock += 1;
                                events.with(|e| e.push(Event::Restocked { title: 0, client }));
                            }
                            InvMsg::Order { client, token, reply } => {
                                pending.push((client, token, reply));
                            }
                        }
                        while stock > 0 && !pending.is_empty() {
                            let i = ctx.choose(pending.len());
                            let (client, token, reply) = pending.remove(i);
                            stock -= 1;
                            events.with(|e| e.push(Event::Sold { title: 0, client }));
                            rec.push(token);
                            reply.send(0);
                        }
                    }
                    final_stock.with(|s| *s = stock);
                });
            }
            for client in 0..2usize {
                let boxed = boxed.clone();
                h.spawn(move |ctx| {
                    let token = (client + 1) as i64;
                    boxed.send(InvMsg::Restock { client });
                    ctx.pause();
                    let reply: SimBox<u8> = SimBox::new();
                    boxed.send(InvMsg::Order { client, token, reply: reply.clone() });
                    reply.recv(ctx);
                });
            }
            h.run(sched)
        }
        Discipline::Tasks => {
            let exec = tasks::Executor::new();
            let stock: Shared<i64> = Shared::new(1);
            for client in 0..2usize {
                let stock = stock.clone();
                let events = events.clone();
                let rec = rec.clone();
                exec.spawn("client", move |ctx: tasks::Ctx| async move {
                    let token = (client + 1) as i64;
                    ctx.yield_now().await;
                    stock.with(|s| *s += 1);
                    events.with(|e| e.push(Event::Restocked { title: 0, client }));
                    let sp = stock.clone();
                    ctx.yield_now().await;
                    ctx.wait_until(move || sp.with(|s| *s > 0)).await;
                    stock.with(|s| *s -= 1);
                    events.with(|e| e.push(Event::Sold { title: 0, client }));
                    rec.push(token);
                });
            }
            let run = tasks_run(exec, sched);
            final_stock.with(|fs| *fs = stock.with(|s| *s));
            run
        }
        _ => {
            let mon = Mon::new(disc(d));
            let stock: Shared<i64> = Shared::new(1);
            let mut h = Harness::new();
            for client in 0..2usize {
                let mon = mon.clone();
                let stock = stock.clone();
                let events = events.clone();
                let rec = rec.clone();
                h.spawn(move |ctx| {
                    let token = (client + 1) as i64;
                    let sk = stock.clone();
                    let ev = events.clone();
                    mon.section(ctx, move || {
                        sk.with(|s| *s += 1);
                        ev.with(|e| e.push(Event::Restocked { title: 0, client }));
                    });
                    let sp = stock.clone();
                    let sk = stock.clone();
                    let ev = events.clone();
                    let rc = rec.clone();
                    mon.section_when(
                        ctx,
                        move || sp.with(|s| *s > 0),
                        move || {
                            sk.with(|s| *s -= 1);
                            ev.with(|e| e.push(Event::Sold { title: 0, client }));
                            rc.push(token);
                        },
                    );
                });
            }
            let run = h.run(sched);
            final_stock.with(|fs| *fs = stock.with(|s| *s));
            run
        }
    };

    let config = book_inventory::Config {
        titles: 1,
        initial_stock: 1,
        clients: 2,
        orders_per_client: 1,
        restocks_per_client: 1,
    };
    let violation = if run.deadlocked || run.diverged {
        None
    } else {
        let report = book_inventory::Report {
            events: events.with(|e| e.clone()),
            final_stock: BTreeMap::from([(0usize, final_stock.with(|s| *s) as u32)]),
        };
        book_inventory::validate(&report, config).err().map(|v| v.to_string())
    };
    outcome(run, &rec, violation)
}

// --- sum with workers -------------------------------------------------------

fn run_sum_workers(d: Discipline, sched: &mut dyn Sched) -> Outcome {
    const EXPECTED: i64 = 30;
    let sum: Shared<i64> = Shared::new(0);

    let run = match d {
        Discipline::Actors => {
            let boxed: SimBox<i64> = SimBox::new();
            let mut h = Harness::new();
            {
                let boxed = boxed.clone();
                let sum = sum.clone();
                h.spawn(move |ctx| {
                    let mut acc = 0i64;
                    for _ in 0..4 {
                        acc += boxed.recv(ctx);
                    }
                    sum.with(|s| *s = acc);
                });
            }
            for k in [5i64, 10] {
                let boxed = boxed.clone();
                h.spawn(move |ctx| {
                    for _ in 0..2 {
                        ctx.pause();
                        boxed.send(k);
                    }
                });
            }
            h.run(sched)
        }
        Discipline::Tasks => {
            // The tasks rendition mirrors the actor one: workers stream
            // contributions over a channel and a single aggregator folds
            // them, so the channel primitive gets conformance coverage.
            let exec = tasks::Executor::new();
            let (tx, rx) = tasks::channel::<i64>();
            {
                let sum = sum.clone();
                exec.spawn("aggregator", move |_ctx: tasks::Ctx| async move {
                    let mut acc = 0i64;
                    for _ in 0..4 {
                        acc += rx.recv().await.expect("workers send exactly four values");
                    }
                    sum.with(|s| *s = acc);
                });
            }
            for k in [5i64, 10] {
                let tx = tx.clone();
                exec.spawn("worker", move |ctx: tasks::Ctx| async move {
                    for _ in 0..2 {
                        ctx.yield_now().await;
                        tx.send(k);
                    }
                });
            }
            drop(tx);
            tasks_run(exec, sched)
        }
        _ => {
            let mon = Mon::new(disc(d));
            let mut h = Harness::new();
            for k in [5i64, 10] {
                let mon = mon.clone();
                let sum = sum.clone();
                h.spawn(move |ctx| {
                    for _ in 0..2 {
                        let sk = sum.clone();
                        mon.section(ctx, move || sk.with(|s| *s += k));
                    }
                });
            }
            h.run(sched)
        }
    };

    let total = sum.with(|s| *s);
    let obs = if run.deadlocked || run.diverged { None } else { Some(total.to_string()) };
    let violation = (!run.deadlocked && !run.diverged && total != EXPECTED)
        .then(|| format!("sum {total} != expected {EXPECTED} (lost update)"));
    Outcome { run, obs, violation }
}

// --- thread pool arithmetic -------------------------------------------------

fn run_thread_pool(d: Discipline, sched: &mut dyn Sched) -> Outcome {
    let rec = Recorder::new();
    let total: Shared<i64> = Shared::new(0);
    let evaluate = |t: i64| thread_pool_arith::ArithTask { x: t - 1 }.evaluate();

    let run = match d {
        Discipline::Actors => {
            // Pull-based: workers request the next task from a queue
            // actor; 0 means "no more work".
            let reqs: SimBox<SimBox<i64>> = SimBox::new();
            let mut h = Harness::new();
            {
                let reqs = reqs.clone();
                h.spawn(move |ctx| {
                    let mut next = 1i64;
                    for _ in 0..5 {
                        let reply = reqs.recv(ctx);
                        if next <= 3 {
                            reply.send(next);
                            next += 1;
                        } else {
                            reply.send(0);
                        }
                    }
                });
            }
            for _ in 0..2 {
                let reqs = reqs.clone();
                let rec = rec.clone();
                let total = total.clone();
                h.spawn(move |ctx| loop {
                    let reply: SimBox<i64> = SimBox::new();
                    reqs.send(reply.clone());
                    let t = reply.recv(ctx);
                    if t == 0 {
                        break;
                    }
                    let r = evaluate(t);
                    ctx.pause();
                    total.with(|s| *s += r);
                    rec.push(r);
                });
            }
            h.run(sched)
        }
        Discipline::Tasks => {
            let exec = tasks::Executor::new();
            let queue: Shared<VecDeque<i64>> = Shared::new(VecDeque::from([1, 2, 3]));
            for _ in 0..2 {
                let queue = queue.clone();
                let rec = rec.clone();
                let total = total.clone();
                exec.spawn("worker", move |ctx: tasks::Ctx| async move {
                    loop {
                        ctx.yield_now().await;
                        let t = queue.with(|q| q.pop_front());
                        let Some(t) = t else { break };
                        let r = evaluate(t);
                        ctx.yield_now().await;
                        total.with(|s| *s += r);
                        rec.push(r);
                    }
                });
            }
            tasks_run(exec, sched)
        }
        _ => {
            let mon = Mon::new(disc(d));
            let queue: Shared<VecDeque<i64>> = Shared::new(VecDeque::from([1, 2, 3]));
            let mut h = Harness::new();
            for _ in 0..2 {
                let mon = mon.clone();
                let queue = queue.clone();
                let rec = rec.clone();
                let total = total.clone();
                h.spawn(move |ctx| loop {
                    let qk = queue.clone();
                    let t = mon.section(ctx, move || qk.with(|q| q.pop_front()));
                    let Some(t) = t else { break };
                    let r = evaluate(t);
                    let tk = total.clone();
                    let rc = rec.clone();
                    mon.section(ctx, move || {
                        tk.with(|s| *s += r);
                        rc.push(r);
                    });
                });
            }
            h.run(sched)
        }
    };

    let expected =
        thread_pool_arith::sequential_total(thread_pool_arith::Config { tasks: 3, workers: 2 });
    let grand = total.with(|s| *s);
    let obs = if run.deadlocked || run.diverged {
        None
    } else {
        let mut tokens = rec.tokens();
        tokens.push(grand);
        Some(tokens.iter().map(i64::to_string).collect::<Vec<_>>().join(" "))
    };
    let violation = (!run.deadlocked && !run.diverged && grand != expected)
        .then(|| format!("total {grand} != sequential oracle {expected}"));
    Outcome { run, obs, violation }
}
