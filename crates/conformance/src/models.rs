//! Pseudocode models of the classical problems, sized for exhaustive
//! exploration.
//!
//! Each model mirrors the *observable* structure of the corresponding
//! controlled-executor implementation in [`crate::problems`]: shared
//! state guarded by `EXC_ACC`, observation tokens collected into an
//! `obs` list at the same program points where the runtime records
//! them, and a final loop printing one token per line. The explorer
//! normalizes output to whitespace-separated tokens, so a runtime
//! observation — tokens joined by single spaces — is a member of the
//! model's output set exactly when the model admits that interleaving.
//!
//! The configurations are deliberately tiny (2 philosophers, 2+2 party
//! guests, a capacity-1 buffer, …): small enough that the explorer
//! enumerates every interleaving without truncation, large enough that
//! each problem still has several genuinely different outcomes.

use concur_exec::TerminalSet;

/// Exhaustively explore one model's terminal set through the memoized
/// query layer ([`concur_exec::OwnedSession`]): the first caller per
/// source pays the graph build, every later caller — the fuzz oracle,
/// the real-runtime spot checks, the model unit tests — reads the
/// cached graph. Errors on parse failure, runtime fault, or a
/// truncated exploration (models must be exhaustively explorable).
pub fn explore_model(src: &str) -> Result<TerminalSet, String> {
    let session =
        concur_exec::OwnedSession::from_source(src).map_err(|e| format!("model parse: {e}"))?;
    let set = session.terminals().map_err(|e| format!("model explore: {e}"))?;
    if set.stats.truncated {
        return Err("model exploration truncated".into());
    }
    Ok(set)
}

/// Dining philosophers with a global fork order (both take fork 0
/// first). Tokens: philosopher id at the moment it eats, while holding
/// both forks. Deadlock-free.
pub const DINING_ORDERED: &str = r#"
forks = [FALSE, FALSE]
obs = []

DEFINE take(i)
    EXC_ACC
        WHILE forks[i]
            WAIT()
        ENDWHILE
        forks[i] = TRUE
    END_EXC_ACC
ENDDEF

DEFINE put(i)
    EXC_ACC
        forks[i] = FALSE
        NOTIFY()
    END_EXC_ACC
ENDDEF

DEFINE philosopher(id, first, second)
    take(first)
    take(second)
    EXC_ACC
        obs = APPEND(obs, id)
    END_EXC_ACC
    put(second)
    put(first)
ENDDEF

PARA
    philosopher(1, 0, 1)
    philosopher(2, 0, 1)
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// Dining philosophers, naive fork order — the circular wait is
/// reachable, so the explorer reports a deadlock alongside the two
/// successful outputs. Runtime runs may deadlock too; the oracle
/// accepts that exactly because the model proves it possible.
pub const DINING_NAIVE: &str = r#"
forks = [FALSE, FALSE]
obs = []

DEFINE take(i)
    EXC_ACC
        WHILE forks[i]
            WAIT()
        ENDWHILE
        forks[i] = TRUE
    END_EXC_ACC
ENDDEF

DEFINE put(i)
    EXC_ACC
        forks[i] = FALSE
        NOTIFY()
    END_EXC_ACC
ENDDEF

DEFINE philosopher(id, first, second)
    take(first)
    take(second)
    EXC_ACC
        obs = APPEND(obs, id)
    END_EXC_ACC
    put(second)
    put(first)
ENDDEF

PARA
    philosopher(1, 0, 1)
    philosopher(2, 1, 0)
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// Bounded buffer, capacity 1: two producers (tokens 11,12 and 21,22)
/// and one consumer. Tokens: items in consumption order — the six
/// order-preserving merges of the two producer streams.
pub const BOUNDED_BUFFER: &str = r#"
buffer = []
capacity = 1
obs = []

DEFINE produce(item)
    EXC_ACC
        WHILE LEN(buffer) >= capacity
            WAIT()
        ENDWHILE
        buffer = APPEND(buffer, item)
        NOTIFY()
    END_EXC_ACC
ENDDEF

DEFINE producer(base)
    FOR i = 1 TO 2
        produce(base + i)
    ENDFOR
ENDDEF

DEFINE consumer()
    FOR i = 1 TO 4
        EXC_ACC
            WHILE LEN(buffer) == 0
                WAIT()
            ENDWHILE
            item = buffer[0]
            buffer = TAIL(buffer)
            NOTIFY()
        END_EXC_ACC
        obs = APPEND(obs, item)
    ENDFOR
ENDDEF

PARA
    producer(10)
    producer(20)
    consumer()
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// Readers–writers: two readers record the version they saw, one
/// writer bumps it. Reading and recording are *separate* critical
/// sections — exactly like the runtime implementations, which log the
/// read outside the read lock — so "1 0" (later reader saw the old
/// version but logged first) is a legal output.
pub const READERS_WRITERS: &str = r#"
version = 0
obs = []

DEFINE reader()
    EXC_ACC
        seen = version
    END_EXC_ACC
    EXC_ACC
        obs = APPEND(obs, seen)
    END_EXC_ACC
ENDDEF

DEFINE writer()
    EXC_ACC
        version = version + 1
    END_EXC_ACC
ENDDEF

PARA
    reader()
    reader()
    writer()
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// Sleeping barber: one barber, one waiting chair, two customers.
/// Tokens: `10 + id` when a customer's cut finishes, `20 + id` when a
/// customer is turned away. `handled` counts both outcomes so the
/// barber knows when to close shop.
pub const SLEEPING_BARBER: &str = r#"
waiting = []
done = [FALSE, FALSE]
handled = 0
obs = []

DEFINE barber()
    WHILE handled < 2
        EXC_ACC
            WHILE LEN(waiting) == 0 AND handled < 2
                WAIT()
            ENDWHILE
            IF LEN(waiting) > 0 THEN
                c = waiting[0]
                waiting = TAIL(waiting)
                handled = handled + 1
                obs = APPEND(obs, 10 + c)
                done[c] = TRUE
                NOTIFY()
            ENDIF
        END_EXC_ACC
    ENDWHILE
ENDDEF

DEFINE customer(id)
    seated = FALSE
    EXC_ACC
        IF LEN(waiting) < 1 THEN
            waiting = APPEND(waiting, id)
            seated = TRUE
        ELSE
            handled = handled + 1
            obs = APPEND(obs, 20 + id)
        ENDIF
        NOTIFY()
    END_EXC_ACC
    IF seated THEN
        EXC_ACC
            WHILE done[id] == FALSE
                WAIT()
            ENDWHILE
        END_EXC_ACC
    ENDIF
ENDDEF

PARA
    barber()
    customer(0)
    customer(1)
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// One-lane bridge, greedy (no fairness batch): two red cars
/// (direction 1) and one blue car (direction 2), one crossing each.
/// Tokens: the direction of each car as it enters the bridge.
pub const BRIDGE: &str = r#"
carsOn = 0
dir = 0
obs = []

DEFINE cross(d)
    EXC_ACC
        WHILE carsOn > 0 AND dir != d
            WAIT()
        ENDWHILE
        dir = d
        carsOn = carsOn + 1
        obs = APPEND(obs, d)
    END_EXC_ACC
    EXC_ACC
        carsOn = carsOn - 1
        NOTIFY()
    END_EXC_ACC
ENDDEF

PARA
    cross(1)
    cross(1)
    cross(2)
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// Party matching: two boys, two girls; the second guest of a pair to
/// arrive claims the longest-waiting guest of the other sex (FIFO).
/// Tokens: `(boy + 1) * 10 + girl + 1` at the moment a pair leaves.
pub const PARTY_MATCHING: &str = r#"
waitB = []
waitG = []
leftB = [FALSE, FALSE]
leftG = [FALSE, FALSE]
obs = []

DEFINE boy(id)
    EXC_ACC
        IF LEN(waitG) > 0 THEN
            g = waitG[0]
            waitG = TAIL(waitG)
            leftG[g] = TRUE
            leftB[id] = TRUE
            obs = APPEND(obs, (id + 1) * 10 + g + 1)
            NOTIFY()
        ELSE
            waitB = APPEND(waitB, id)
        ENDIF
    END_EXC_ACC
    EXC_ACC
        WHILE leftB[id] == FALSE
            WAIT()
        ENDWHILE
    END_EXC_ACC
ENDDEF

DEFINE girl(id)
    EXC_ACC
        IF LEN(waitB) > 0 THEN
            b = waitB[0]
            waitB = TAIL(waitB)
            leftB[b] = TRUE
            leftG[id] = TRUE
            obs = APPEND(obs, (b + 1) * 10 + id + 1)
            NOTIFY()
        ELSE
            waitG = APPEND(waitG, id)
        ENDIF
    END_EXC_ACC
    EXC_ACC
        WHILE leftG[id] == FALSE
            WAIT()
        ENDWHILE
    END_EXC_ACC
ENDDEF

PARA
    boy(0)
    boy(1)
    girl(0)
    girl(1)
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// Book inventory, one title: stock starts at 1, each client restocks
/// one copy then orders one copy. Tokens: client id at the moment its
/// order is filled. Stock can never go negative and no run starves.
pub const BOOK_INVENTORY: &str = r#"
stock = 1
obs = []

DEFINE client(id)
    EXC_ACC
        stock = stock + 1
        NOTIFY()
    END_EXC_ACC
    EXC_ACC
        WHILE stock == 0
            WAIT()
        ENDWHILE
        stock = stock - 1
        obs = APPEND(obs, id)
    END_EXC_ACC
ENDDEF

PARA
    client(1)
    client(2)
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// Sum with workers: two workers add their share (5 twice, 10 twice)
/// under mutual exclusion. A single deterministic output — the point
/// of the exercise is that *every* interleaving prints 30.
pub const SUM_WORKERS: &str = r#"
sum = 0

DEFINE worker(k)
    FOR i = 1 TO 2
        EXC_ACC
            sum = sum + k
        END_EXC_ACC
    ENDFOR
ENDDEF

PARA
    worker(5)
    worker(10)
ENDPARA

PRINTLN sum
"#;

/// Thread-pool arithmetic: a queue of three tasks (stored as `x + 1`
/// so the value 0 can mean "queue empty"), two workers, each task
/// evaluated with the same branchy formula as
/// `concur_problems::thread_pool_arith::ArithTask::evaluate`.
/// Tokens: each task's result in completion order, then the total.
pub const THREAD_POOL: &str = r#"
queue = [1, 2, 3]
total = 0
obs = []

DEFINE evaluate(x)
    acc = 0
    FOR k = 1 TO 8
        term = x * k + k * k
        IF term % 3 == 0 THEN
            acc = acc - term
        ELSE
            acc = acc + term
        ENDIF
    ENDFOR
    RETURN acc
ENDDEF

DEFINE worker()
    busy = TRUE
    WHILE busy
        t = 0
        EXC_ACC
            IF LEN(queue) > 0 THEN
                t = queue[0]
                queue = TAIL(queue)
            ENDIF
        END_EXC_ACC
        IF t == 0 THEN
            busy = FALSE
        ELSE
            r = evaluate(t - 1)
            EXC_ACC
                total = total + r
                obs = APPEND(obs, r)
            END_EXC_ACC
        ENDIF
    ENDWHILE
ENDDEF

PARA
    worker()
    worker()
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
PRINTLN total
"#;

// --- task-discipline (AWAIT) renditions -------------------------------------
//
// The `TASKS_*` models re-express a representative subset of the
// problems in the await-point style of `concur-tasks`: instead of
// WAIT/NOTIFY inside a critical section, a task `AWAIT`s a call-free
// condition *outside* any `EXC_ACC` and then atomically re-checks it
// before acting (the condition may have been falsified between the
// await firing and the task being scheduled — exactly the recheck a
// real async runtime needs after `wait_until` resumes). Each model is
// pinned below to the same output set (and deadlock verdict) as its
// monitor-style counterpart, which is what makes AWAIT a fourth
// equivalent phrasing rather than a new semantics.

/// [`DINING_ORDERED`] in the await discipline. Forks are claimed by
/// awaiting `forks[i] == FALSE` and re-checking under the lock.
pub const TASKS_DINING_ORDERED: &str = r#"
forks = [FALSE, FALSE]
obs = []

DEFINE take(i)
    got = FALSE
    WHILE got == FALSE
        AWAIT forks[i] == FALSE
        EXC_ACC
            IF forks[i] == FALSE THEN
                forks[i] = TRUE
                got = TRUE
            ENDIF
        END_EXC_ACC
    ENDWHILE
ENDDEF

DEFINE put(i)
    EXC_ACC
        forks[i] = FALSE
    END_EXC_ACC
ENDDEF

DEFINE philosopher(id, first, second)
    take(first)
    take(second)
    EXC_ACC
        obs = APPEND(obs, id)
    END_EXC_ACC
    put(second)
    put(first)
ENDDEF

PARA
    philosopher(1, 0, 1)
    philosopher(2, 0, 1)
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// [`DINING_NAIVE`] in the await discipline: crossed fork orders make
/// the circular wait reachable as two tasks parked on each other's
/// fork conditions — the explorer must classify that as a deadlock
/// (no enabled await), matching the WAIT-based model.
pub const TASKS_DINING_NAIVE: &str = r#"
forks = [FALSE, FALSE]
obs = []

DEFINE take(i)
    got = FALSE
    WHILE got == FALSE
        AWAIT forks[i] == FALSE
        EXC_ACC
            IF forks[i] == FALSE THEN
                forks[i] = TRUE
                got = TRUE
            ENDIF
        END_EXC_ACC
    ENDWHILE
ENDDEF

DEFINE put(i)
    EXC_ACC
        forks[i] = FALSE
    END_EXC_ACC
ENDDEF

DEFINE philosopher(id, first, second)
    take(first)
    take(second)
    EXC_ACC
        obs = APPEND(obs, id)
    END_EXC_ACC
    put(second)
    put(first)
ENDDEF

PARA
    philosopher(1, 0, 1)
    philosopher(2, 1, 0)
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// [`BOUNDED_BUFFER`] in the await discipline. AWAIT conditions must
/// be call-free, so the buffer occupancy lives in a scalar `count`
/// mirrored alongside the list.
pub const TASKS_BOUNDED_BUFFER: &str = r#"
buffer = []
count = 0
capacity = 1
obs = []

DEFINE produce(item)
    sent = FALSE
    WHILE sent == FALSE
        AWAIT count < capacity
        EXC_ACC
            IF count < capacity THEN
                buffer = APPEND(buffer, item)
                count = count + 1
                sent = TRUE
            ENDIF
        END_EXC_ACC
    ENDWHILE
ENDDEF

DEFINE producer(base)
    FOR i = 1 TO 2
        produce(base + i)
    ENDFOR
ENDDEF

DEFINE consumer()
    FOR i = 1 TO 4
        item = 0
        got = FALSE
        WHILE got == FALSE
            AWAIT count > 0
            EXC_ACC
                IF count > 0 THEN
                    item = buffer[0]
                    buffer = TAIL(buffer)
                    count = count - 1
                    got = TRUE
                ENDIF
            END_EXC_ACC
        ENDWHILE
        obs = APPEND(obs, item)
    ENDFOR
ENDDEF

PARA
    producer(10)
    producer(20)
    consumer()
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// [`BRIDGE`] in the await discipline: a car awaits the bridge being
/// free or flowing its way, then re-checks atomically on entry.
pub const TASKS_BRIDGE: &str = r#"
carsOn = 0
dir = 0
obs = []

DEFINE cross(d)
    entered = FALSE
    WHILE entered == FALSE
        AWAIT carsOn == 0 OR dir == d
        EXC_ACC
            IF carsOn == 0 OR dir == d THEN
                dir = d
                carsOn = carsOn + 1
                obs = APPEND(obs, d)
                entered = TRUE
            ENDIF
        END_EXC_ACC
    ENDWHILE
    EXC_ACC
        carsOn = carsOn - 1
    END_EXC_ACC
ENDDEF

PARA
    cross(1)
    cross(1)
    cross(2)
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

/// [`BOOK_INVENTORY`] in the await discipline: restock atomically,
/// then await stock and re-check before taking a copy.
pub const TASKS_BOOK_INVENTORY: &str = r#"
stock = 1
obs = []

DEFINE client(id)
    EXC_ACC
        stock = stock + 1
    END_EXC_ACC
    bought = FALSE
    WHILE bought == FALSE
        AWAIT stock > 0
        EXC_ACC
            IF stock > 0 THEN
                stock = stock - 1
                obs = APPEND(obs, id)
                bought = TRUE
            ENDIF
        END_EXC_ACC
    ENDWHILE
ENDDEF

PARA
    client(1)
    client(2)
ENDPARA

FOR i = 1 TO LEN(obs)
    PRINTLN obs[i - 1]
ENDFOR
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn outputs(src: &str) -> (BTreeSet<String>, bool) {
        let set = explore_model(src).expect("model explores exhaustively");
        (set.output_set(), set.has_deadlock())
    }

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn dining_ordered_outputs() {
        let (out, deadlock) = outputs(DINING_ORDERED);
        assert_eq!(out, set(&["1 2", "2 1"]));
        assert!(!deadlock);
    }

    #[test]
    fn dining_naive_deadlocks() {
        let (out, deadlock) = outputs(DINING_NAIVE);
        assert_eq!(out, set(&["1 2", "2 1"]));
        assert!(deadlock);
    }

    #[test]
    fn bounded_buffer_outputs_are_the_six_merges() {
        let (out, deadlock) = outputs(BOUNDED_BUFFER);
        assert_eq!(
            out,
            set(&[
                "11 12 21 22",
                "11 21 12 22",
                "11 21 22 12",
                "21 11 12 22",
                "21 11 22 12",
                "21 22 11 12",
            ])
        );
        assert!(!deadlock);
    }

    #[test]
    fn readers_writers_outputs() {
        let (out, deadlock) = outputs(READERS_WRITERS);
        assert_eq!(out, set(&["0 0", "0 1", "1 0", "1 1"]));
        assert!(!deadlock);
    }

    #[test]
    fn sleeping_barber_outputs() {
        let (out, deadlock) = outputs(SLEEPING_BARBER);
        assert_eq!(out, set(&["10 11", "11 10", "20 11", "21 10"]));
        assert!(!deadlock);
    }

    #[test]
    fn bridge_outputs_are_all_entry_orders() {
        let (out, deadlock) = outputs(BRIDGE);
        assert_eq!(out, set(&["1 1 2", "1 2 1", "2 1 1"]));
        assert!(!deadlock);
    }

    #[test]
    fn party_matching_outputs_are_both_matchings_in_both_orders() {
        let (out, deadlock) = outputs(PARTY_MATCHING);
        assert_eq!(out, set(&["11 22", "22 11", "12 21", "21 12"]));
        assert!(!deadlock);
    }

    #[test]
    fn book_inventory_outputs() {
        let (out, deadlock) = outputs(BOOK_INVENTORY);
        assert_eq!(out, set(&["1 2", "2 1"]));
        assert!(!deadlock);
    }

    #[test]
    fn sum_workers_is_deterministic() {
        let (out, deadlock) = outputs(SUM_WORKERS);
        assert_eq!(out, set(&["30"]));
        assert!(!deadlock);
    }

    #[test]
    fn await_rendition_agrees_with_its_monitor_counterpart() {
        // The same problem phrased with AWAIT + atomic recheck must
        // reach exactly the monitor model's terminal set — including
        // the deadlock verdict. This is the model-level half of the
        // "fourth paradigm is equivalent" claim.
        for (name, tasks_src, base_src) in [
            ("dining_ordered", TASKS_DINING_ORDERED, DINING_ORDERED),
            ("dining_naive", TASKS_DINING_NAIVE, DINING_NAIVE),
            ("bounded_buffer", TASKS_BOUNDED_BUFFER, BOUNDED_BUFFER),
            ("bridge", TASKS_BRIDGE, BRIDGE),
            ("book_inventory", TASKS_BOOK_INVENTORY, BOOK_INVENTORY),
        ] {
            let (tasks_out, tasks_deadlock) = outputs(tasks_src);
            let (base_out, base_deadlock) = outputs(base_src);
            assert_eq!(tasks_out, base_out, "{name}: AWAIT model output set differs");
            assert_eq!(tasks_deadlock, base_deadlock, "{name}: AWAIT model deadlock differs");
        }
    }

    #[test]
    fn await_naive_dining_deadlock_is_reachable() {
        let (_, deadlock) = outputs(TASKS_DINING_NAIVE);
        assert!(deadlock, "crossed awaits must deadlock somewhere in the state graph");
    }

    #[test]
    fn thread_pool_outputs() {
        let (out, deadlock) = outputs(THREAD_POOL);
        assert_eq!(
            out,
            set(&["114 -84 -30 0", "114 -30 -84 0", "-84 114 -30 0", "-84 -30 114 0",])
        );
        assert!(!deadlock);
    }
}
