//! Spot-checks of the *real* runtimes against the pseudocode models.
//!
//! The controlled executor in [`crate::problems`] explores schedules
//! cheaply but is still a model of the runtimes. This module closes
//! the last gap: it runs the actual `concur-problems` implementations —
//! real OS threads behind `concur-threads` locks, the real
//! `concur-actors` mailboxes, the real `concur-coroutines`
//! scheduler — on the same tiny configurations, maps their event logs
//! to the models' token vocabulary, and asserts membership in the
//! explorer's exhaustive output sets.
//!
//! Real-thread runs on a quiet machine tend to collapse onto one
//! schedule, so each iteration arms `concur_threads::chaos` with a
//! fresh seed: lock acquisitions then occasionally yield the time
//! slice, shaking out different interleavings while staying a valid
//! execution. The chaos kernel records every perturbation decision it
//! makes, and the `with_chaos` wrapper below dumps the recorded trace
//! as a universal artifact (see [`concur_decide::TraceArtifact`]) when
//! a spot check fails — the same replayable format the controlled
//! fuzzer writes,
//! so a real-runtime failure leaves behind a
//! `concur_threads::chaos::install_replay`-able schedule instead of
//! vanishing with the OS scheduler's mood.

use crate::models;
use concur_decide::TraceArtifact;
use concur_exec::TerminalSet;
use concur_problems::{
    book_inventory, bounded_buffer, bridge, dining, party_matching, readers_writers,
    sleeping_barber, sum_workers, thread_pool_arith, Paradigm,
};
use std::collections::BTreeSet;

/// Outcome of the spot-check for one problem.
#[derive(Debug)]
pub struct SpotReport {
    pub name: &'static str,
    /// Distinct observations seen across all paradigms and seeds.
    pub observed: BTreeSet<String>,
    pub runs: usize,
}

fn explore(src: &str) -> Result<TerminalSet, String> {
    models::explore_model(src)
}

fn render(tokens: &[i64]) -> String {
    tokens.iter().map(i64::to_string).collect::<Vec<_>>().join(" ")
}

fn require_member(
    name: &str,
    what: &str,
    model: &TerminalSet,
    tokens: &[i64],
) -> Result<String, String> {
    let obs = render(tokens);
    if model.contains_output(&obs) {
        Ok(obs)
    } else {
        Err(format!("{name}: real {what} produced \"{obs}\", not in the model's terminal set"))
    }
}

/// Run `body` under an armed chaos kernel seeded with `seed`,
/// guaranteeing the kernel is disarmed afterwards (the pre-kernel code
/// leaked an armed stream on every `?` error path). On failure, the
/// recorded perturbation trace is dumped through the same artifact
/// path the controlled fuzzer uses; feed its `decisions` to
/// `concur_threads::chaos::install_replay` to re-apply the schedule
/// (exact for single-threaded runs, best-effort under real races).
fn with_chaos<T>(
    problem: &str,
    seed: u64,
    body: impl FnOnce() -> Result<T, String>,
) -> Result<T, String> {
    concur_threads::chaos::install(seed);
    let result = body();
    let trace = concur_threads::chaos::uninstall();
    result.map_err(|detail| {
        let artifact = TraceArtifact::from_trace(problem, "real-chaos", &detail, &trace);
        match crate::fuzz::write_artifact(&format!("{problem}-real-chaos"), &artifact) {
            Some(path) => format!("{detail} (chaos trace dumped to {})", path.display()),
            None => detail,
        }
    })
}

/// One full spot-check sweep: every problem, every paradigm,
/// `iters` chaos seeds derived from `seed`.
pub fn spot_check_all(iters: usize, seed: u64) -> Result<Vec<SpotReport>, String> {
    let mut reports = Vec::new();
    let dining_ordered = explore(models::DINING_ORDERED)?;
    let dining_naive = explore(models::DINING_NAIVE)?;
    let bounded = explore(models::BOUNDED_BUFFER)?;
    let rw = explore(models::READERS_WRITERS)?;
    let barber = explore(models::SLEEPING_BARBER)?;
    let bridge_m = explore(models::BRIDGE)?;
    let party = explore(models::PARTY_MATCHING)?;
    let book = explore(models::BOOK_INVENTORY)?;
    let sum_m = explore(models::SUM_WORKERS)?;

    let mut push = |name: &'static str, observed: BTreeSet<String>, runs: usize| {
        reports.push(SpotReport { name, observed, runs });
    };

    let paradigms = Paradigm::ALL;
    let chaos_seed = |i: usize, p: usize| seed ^ ((i as u64) << 8) ^ (p as u64) | 1;

    // --- dining (ordered + naive, threads strategies) ----------------
    {
        let config = dining::Config { philosophers: 2, meals_per_philosopher: 1 };
        let mut observed = BTreeSet::new();
        let mut runs = 0;
        for i in 0..iters {
            for (p, paradigm) in paradigms.iter().enumerate() {
                let obs = with_chaos("dining_ordered", chaos_seed(i, p), || {
                    let report = dining::run(*paradigm, config)
                        .map_err(|v| format!("dining_ordered/{paradigm}: {v}"))?;
                    if report.deadlocked {
                        return Err("dining_ordered: ordered strategy deadlocked".into());
                    }
                    let tokens: Vec<i64> = report
                        .events
                        .iter()
                        .filter_map(|e| match e {
                            dining::Event::StartedEating(seat) => Some(*seat as i64 + 1),
                            _ => None,
                        })
                        .collect();
                    require_member("dining_ordered", "run", &dining_ordered, &tokens)
                })?;
                observed.insert(obs);
                runs += 1;
            }
        }
        push("dining_ordered", observed, runs);
    }
    {
        let config = dining::Config { philosophers: 2, meals_per_philosopher: 1 };
        let mut observed = BTreeSet::new();
        let mut runs = 0;
        for i in 0..iters {
            let obs = with_chaos("dining_naive", chaos_seed(i, 7), || {
                let report = dining::run_threads(config, dining::Strategy::Naive)
                    .map_err(|v| format!("dining_naive: {v}"))?;
                if report.deadlocked {
                    // Accepted: the model proves the deadlock reachable.
                    if !dining_naive.has_deadlock() {
                        return Err("dining_naive: model claims no deadlock".into());
                    }
                    return Ok("<deadlock>".to_string());
                }
                let tokens: Vec<i64> = report
                    .events
                    .iter()
                    .filter_map(|e| match e {
                        dining::Event::StartedEating(seat) => Some(*seat as i64 + 1),
                        _ => None,
                    })
                    .collect();
                require_member("dining_naive", "run", &dining_naive, &tokens)
            })?;
            observed.insert(obs);
            runs += 1;
        }
        push("dining_naive", observed, runs);
    }

    // --- bounded buffer ----------------------------------------------
    {
        let config = bounded_buffer::Config {
            producers: 2,
            consumers: 1,
            items_per_producer: 2,
            capacity: 1,
        };
        let mut observed = BTreeSet::new();
        let mut runs = 0;
        for i in 0..iters {
            for (p, paradigm) in paradigms.iter().enumerate() {
                let obs = with_chaos("bounded_buffer", chaos_seed(i, p), || {
                    let events = bounded_buffer::run(*paradigm, config)
                        .map_err(|v| format!("bounded_buffer/{paradigm}: {v}"))?;
                    let tokens: Vec<i64> = events
                        .iter()
                        .filter_map(|e| match e {
                            bounded_buffer::Event::Consumed(item) => {
                                Some((10 * (item.producer + 1) + item.seq + 1) as i64)
                            }
                            _ => None,
                        })
                        .collect();
                    require_member("bounded_buffer", "run", &bounded, &tokens)
                })?;
                observed.insert(obs);
                runs += 1;
            }
        }
        push("bounded_buffer", observed, runs);
    }

    // --- readers-writers ---------------------------------------------
    {
        let config = readers_writers::Config { readers: 2, writers: 1, ops_per_task: 1 };
        let mut observed = BTreeSet::new();
        let mut runs = 0;
        for i in 0..iters {
            for (p, paradigm) in paradigms.iter().enumerate() {
                let obs = with_chaos("readers_writers", chaos_seed(i, p), || {
                    let events = readers_writers::run(*paradigm, config)
                        .map_err(|v| format!("readers_writers/{paradigm}: {v}"))?;
                    let tokens: Vec<i64> = events
                        .iter()
                        .filter_map(|e| match e {
                            readers_writers::Event::ReadEnd { version, .. } => {
                                Some(*version as i64)
                            }
                            _ => None,
                        })
                        .collect();
                    require_member("readers_writers", "run", &rw, &tokens)
                })?;
                observed.insert(obs);
                runs += 1;
            }
        }
        push("readers_writers", observed, runs);
    }

    // --- sleeping barber ---------------------------------------------
    {
        let config = sleeping_barber::Config { barbers: 1, chairs: 1, customers: 2 };
        let mut observed = BTreeSet::new();
        let mut runs = 0;
        for i in 0..iters {
            for (p, paradigm) in paradigms.iter().enumerate() {
                let obs = with_chaos("sleeping_barber", chaos_seed(i, p), || {
                    let report = sleeping_barber::run(*paradigm, config)
                        .map_err(|v| format!("sleeping_barber/{paradigm}: {v}"))?;
                    let tokens: Vec<i64> = report
                        .events
                        .iter()
                        .filter_map(|e| match e {
                            sleeping_barber::Event::CutFinished { customer, .. } => {
                                Some(10 + *customer as i64)
                            }
                            sleeping_barber::Event::TurnedAway(c) => Some(20 + *c as i64),
                            _ => None,
                        })
                        .collect();
                    require_member("sleeping_barber", "run", &barber, &tokens)
                })?;
                observed.insert(obs);
                runs += 1;
            }
        }
        push("sleeping_barber", observed, runs);
    }

    // --- bridge ------------------------------------------------------
    {
        let config =
            bridge::Config { red_cars: 2, blue_cars: 1, crossings_per_car: 1, fair_batch: None };
        let mut observed = BTreeSet::new();
        let mut runs = 0;
        for i in 0..iters {
            for (p, paradigm) in paradigms.iter().enumerate() {
                let obs = with_chaos("bridge", chaos_seed(i, p), || {
                    let events = bridge::run(*paradigm, config)
                        .map_err(|v| format!("bridge/{paradigm}: {v}"))?;
                    let tokens: Vec<i64> = events
                        .iter()
                        .filter_map(|e| match e {
                            bridge::Event::Entered { dir, .. } => {
                                Some(if *dir == bridge::Dir::Red { 1 } else { 2 })
                            }
                            _ => None,
                        })
                        .collect();
                    require_member("bridge", "run", &bridge_m, &tokens)
                })?;
                observed.insert(obs);
                runs += 1;
            }
        }
        push("bridge", observed, runs);
    }

    // --- party matching ----------------------------------------------
    {
        let config = party_matching::Config { boys: 2, girls: 2 };
        let mut observed = BTreeSet::new();
        let mut runs = 0;
        for i in 0..iters {
            for (p, paradigm) in paradigms.iter().enumerate() {
                let obs = with_chaos("party_matching", chaos_seed(i, p), || {
                    let events = party_matching::run(*paradigm, config)
                        .map_err(|v| format!("party_matching/{paradigm}: {v}"))?;
                    let tokens: Vec<i64> = events
                        .iter()
                        .filter_map(|e| match e {
                            party_matching::Event::LeftTogether { boy, girl } => {
                                Some(((boy + 1) * 10 + girl + 1) as i64)
                            }
                            _ => None,
                        })
                        .collect();
                    require_member("party_matching", "run", &party, &tokens)
                })?;
                observed.insert(obs);
                runs += 1;
            }
        }
        push("party_matching", observed, runs);
    }

    // --- book inventory ----------------------------------------------
    {
        let config = book_inventory::Config {
            titles: 1,
            initial_stock: 1,
            clients: 2,
            orders_per_client: 1,
            restocks_per_client: 1,
        };
        let mut observed = BTreeSet::new();
        let mut runs = 0;
        for i in 0..iters {
            for (p, paradigm) in paradigms.iter().enumerate() {
                let obs = with_chaos("book_inventory", chaos_seed(i, p), || {
                    let report = book_inventory::run(*paradigm, config)
                        .map_err(|v| format!("book_inventory/{paradigm}: {v}"))?;
                    let tokens: Vec<i64> = report
                        .events
                        .iter()
                        .filter_map(|e| match e {
                            book_inventory::Event::Sold { client, .. } => Some(*client as i64 + 1),
                            _ => None,
                        })
                        .collect();
                    require_member("book_inventory", "run", &book, &tokens)
                })?;
                observed.insert(obs);
                runs += 1;
            }
        }
        push("book_inventory", observed, runs);
    }

    // --- sum with workers (deterministic total) ----------------------
    {
        let config = sum_workers::Config { values: vec![5, 5, 10, 10], workers: 2 };
        let mut observed = BTreeSet::new();
        let mut runs = 0;
        for i in 0..iters {
            for (p, paradigm) in paradigms.iter().enumerate() {
                let obs = with_chaos("sum_workers", chaos_seed(i, p), || {
                    let total = sum_workers::run(*paradigm, &config);
                    require_member("sum_workers", "total", &sum_m, &[total])
                })?;
                observed.insert(obs);
                runs += 1;
            }
        }
        push("sum_workers", observed, runs);
    }

    // --- thread pool (scalar oracle; no event log) -------------------
    {
        let config = thread_pool_arith::Config { tasks: 3, workers: 2 };
        let expected = thread_pool_arith::sequential_total(config);
        let mut observed = BTreeSet::new();
        let mut runs = 0;
        for i in 0..iters {
            for (p, paradigm) in paradigms.iter().enumerate() {
                let obs = with_chaos("thread_pool", chaos_seed(i, p), || {
                    let total = thread_pool_arith::run(*paradigm, config);
                    if total != expected {
                        return Err(format!(
                            "thread_pool/{paradigm}: total {total} != sequential oracle {expected}"
                        ));
                    }
                    Ok(total.to_string())
                })?;
                observed.insert(obs);
                runs += 1;
            }
        }
        push("thread_pool", observed, runs);
    }

    Ok(reports)
}
