//! Modelled shared-memory primitives for the controlled executor.
//!
//! The executor is strictly serial, so these are not real
//! synchronization — they are *models* of it: a [`MLock`] decides the
//! order in which tasks pass through critical sections, and the
//! [`Mon`] wrapper expresses the granularity difference between the
//! two shared-memory disciplines:
//!
//! * **Fine** (the threads model): a scheduling point before every
//!   lock operation and inside every critical section — preemption can
//!   strike anywhere, only the lock serializes sections;
//! * **Coop** (the coroutines model): no lock at all — a section is
//!   atomic because a cooperative task only loses control at explicit
//!   yield/block points, exactly the property the paper quotes for
//!   coroutines ("coroutine code needs no locks between yield
//!   points").

use crate::exec::TaskCtx;
use std::sync::{Arc, Mutex as StdMutex};

/// Shared mutable state between tasks. The inner mutex is never
/// contended (the executor is serial); it exists to make the handle
/// `Send` for the coroutine carrier threads.
pub struct Shared<T>(Arc<StdMutex<T>>);

impl<T> Shared<T> {
    pub fn new(value: T) -> Self {
        Shared(Arc::new(StdMutex::new(value)))
    }

    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.lock().expect("serial executor cannot poison"))
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

/// Observation recorder: the tokens a run emits, in order. Rendered
/// identically to the explorer's normalized output (tokens joined by
/// single spaces) so membership is a string comparison.
#[derive(Clone)]
pub struct Recorder(Shared<Vec<i64>>);

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    pub fn new() -> Self {
        Recorder(Shared::new(Vec::new()))
    }

    pub fn push(&self, token: i64) {
        self.0.with(|v| v.push(token));
    }

    pub fn tokens(&self) -> Vec<i64> {
        self.0.with(|v| v.clone())
    }

    pub fn render(&self) -> String {
        self.0.with(|v| v.iter().map(i64::to_string).collect::<Vec<_>>().join(" "))
    }
}

/// A modelled mutex: decides section order, blocks losers.
#[derive(Clone)]
pub struct MLock {
    held: Shared<bool>,
}

impl Default for MLock {
    fn default() -> Self {
        Self::new()
    }
}

impl MLock {
    pub fn new() -> Self {
        MLock { held: Shared::new(false) }
    }

    pub fn acquire(&self, ctx: &mut TaskCtx<'_>) {
        loop {
            ctx.pause();
            let taken = self.held.with(|h| {
                if *h {
                    false
                } else {
                    *h = true;
                    true
                }
            });
            if taken {
                return;
            }
            let held = self.held.clone();
            ctx.block_until(move || held.with(|h| !*h));
        }
    }

    pub fn release(&self) {
        self.held.with(|h| *h = false);
    }
}

/// Shared-memory discipline: where scheduling points live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disc {
    /// Preemptive threads: scheduling points at every lock operation
    /// and inside sections.
    Fine,
    /// Cooperative coroutines: sections are atomic; control moves only
    /// at explicit yield/block points.
    Coop,
}

/// A modelled monitor bundling the discipline with its lock.
#[derive(Clone)]
pub struct Mon {
    disc: Disc,
    lock: MLock,
}

impl Mon {
    pub fn new(disc: Disc) -> Self {
        Mon { disc, lock: MLock::new() }
    }

    /// Run `f` as a critical section.
    pub fn section<R>(&self, ctx: &mut TaskCtx<'_>, f: impl FnOnce() -> R) -> R {
        match self.disc {
            Disc::Fine => {
                self.lock.acquire(ctx);
                ctx.pause();
                let r = f();
                self.lock.release();
                r
            }
            Disc::Coop => {
                // A cooperative task yields before each section; the
                // section body itself is atomic (no lock needed).
                ctx.pause();
                f()
            }
        }
    }

    /// Run `f` as a critical section entered only once `pred` holds —
    /// the modelled `WAIT()` loop. `pred` is re-checked after every
    /// wake-up, under the lock (Fine) or atomically (Coop).
    pub fn section_when<R>(
        &self,
        ctx: &mut TaskCtx<'_>,
        pred: impl Fn() -> bool + Send + Clone + 'static,
        f: impl FnOnce() -> R,
    ) -> R {
        match self.disc {
            Disc::Fine => {
                self.lock.acquire(ctx);
                while !pred() {
                    self.lock.release();
                    let p = pred.clone();
                    ctx.block_until(p);
                    self.lock.acquire(ctx);
                }
                ctx.pause();
                let r = f();
                self.lock.release();
                r
            }
            Disc::Coop => {
                ctx.pause();
                while !pred() {
                    let p = pred.clone();
                    ctx.block_until(p);
                }
                f()
            }
        }
    }

    /// An explicit scheduling point — a `yield` in the coroutine
    /// world, any instruction boundary in the threads world.
    pub fn yield_point(&self, ctx: &mut TaskCtx<'_>) {
        ctx.pause();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Harness, RandomSched};

    #[test]
    fn lock_serializes_sections_under_fine_discipline() {
        // Two tasks each do read-modify-write with a pause inside the
        // section; without the lock the increments could be lost.
        for seed in 0..30 {
            let mon = Mon::new(Disc::Fine);
            let counter = Shared::new(0i64);
            let mut h = Harness::new();
            for _ in 0..2 {
                let mon = mon.clone();
                let counter = counter.clone();
                h.spawn(move |ctx| {
                    for _ in 0..3 {
                        mon.section(ctx, || counter.with(|c| *c += 1));
                    }
                });
            }
            let run = h.run(&mut RandomSched::new(seed));
            assert!(!run.deadlocked && !run.diverged);
            assert_eq!(counter.with(|c| *c), 6, "seed {seed}");
        }
    }

    #[test]
    fn section_when_waits_for_the_condition() {
        for disc in [Disc::Fine, Disc::Coop] {
            for seed in 0..10 {
                let mon = Mon::new(disc);
                let stock = Shared::new(0i64);
                let got = Shared::new(false);
                let mut h = Harness::new();
                let (m1, s1, g1) = (mon.clone(), stock.clone(), got.clone());
                h.spawn(move |ctx| {
                    let s = s1.clone();
                    m1.section_when(
                        ctx,
                        move || s.with(|v| *v > 0),
                        || {
                            s1.with(|v| *v -= 1);
                            g1.with(|v| *v = true);
                        },
                    );
                });
                let (m2, s2) = (mon.clone(), stock.clone());
                h.spawn(move |ctx| {
                    m2.section(ctx, || s2.with(|v| *v += 1));
                });
                let run = h.run(&mut RandomSched::new(seed));
                assert!(!run.deadlocked, "{disc:?} seed {seed}");
                assert!(got.with(|v| *v), "{disc:?} seed {seed}");
                assert_eq!(stock.with(|v| *v), 0);
            }
        }
    }
}
