//! A deterministic serial executor over stackful coroutines.
//!
//! Real OS scheduling cannot be replayed; this executor can. Every
//! task is a [`Coroutine`] that surrenders control at explicit points
//! ([`TaskCtx::pause`], [`TaskCtx::block_until`]) or asks the
//! scheduler to resolve an internal nondeterministic choice
//! ([`TaskCtx::choose`] — e.g. which queued message to deliver). The
//! executor runs exactly one task at a time, so a run is fully
//! determined by the sequence of scheduler decisions — which it
//! records, making any run replayable ([`ReplaySched`]) and any
//! failing schedule shrinkable to a minimal decision vector.
//!
//! Decisions are recorded **only** where more than one alternative
//! exists, so a recorded vector is exactly the run's nondeterminism
//! and nothing else.
//!
//! The policies themselves — seeded random, recorded replay,
//! preemption-bounded systematic — live in the workspace decision
//! kernel (`concur-decide`); this module re-exports them under their
//! historical names. The executor consults any [`Sched`] through
//! [`ChoiceSource::decide`] (the kernel's central clamping point) and
//! records the resolved picks into a [`DecisionTrace`].

use concur_coroutines::{Coroutine, Resume, Yielder};
use concur_decide::{ChoiceSource, DecisionKind, DecisionTrace, Recording};

/// Preemption-bounded systematic schedules (kernel [`concur_decide::BoundedSource`]).
pub use concur_decide::BoundedSource as BoundedSched;
/// The scheduling-policy vocabulary, shared with every other layer of
/// the workspace. `pick_task`/`pick_choice` of the pre-kernel trait
/// are now `decide(DecisionKind::TaskPick, ..)` /
/// `decide(DecisionKind::Choice, ..)`.
pub use concur_decide::ChoiceSource as Sched;
/// Seeded uniformly random schedules (kernel [`concur_decide::RandomSource`]).
pub use concur_decide::RandomSource as RandomSched;
/// Recorded-vector replay, truncation defaults to 0 (kernel
/// [`concur_decide::ReplaySource`]).
pub use concur_decide::ReplaySource as ReplaySched;

/// What a task yields to the executor.
pub enum Req {
    /// A scheduling point: any ready task may run next.
    Pause,
    /// An internal nondeterministic choice among `0..n` of the given
    /// kind; the scheduler picks, and the task is resumed immediately
    /// with the pick.
    Choose(DecisionKind, usize),
    /// Suspend until the predicate holds (re-evaluated by the executor
    /// before each scheduling round).
    Block(Box<dyn FnMut() -> bool + Send>),
}

/// A task's handle to the executor, passed to every task body.
pub struct TaskCtx<'y> {
    y: &'y mut Yielder<usize, Req, ()>,
}

impl TaskCtx<'_> {
    /// Yield to the scheduler; any ready task (including this one) may
    /// run next. This is the preemption point of the modelled world.
    pub fn pause(&mut self) {
        self.y.yield_(Req::Pause);
    }

    /// Resolve an `n`-way nondeterministic choice. Returns a value in
    /// `0..n` picked by the scheduler (`0` when there is no actual
    /// choice). The task keeps running — this is internal
    /// nondeterminism, not a context switch.
    pub fn choose(&mut self, n: usize) -> usize {
        self.choose_kind(DecisionKind::Choice, n)
    }

    /// [`TaskCtx::choose`] for a message-delivery pick: which queued
    /// message a mailbox delivers next. Identical mechanics, but the
    /// recorded trace names the decision for what it is.
    pub fn choose_delivery(&mut self, n: usize) -> usize {
        self.choose_kind(DecisionKind::Delivery, n)
    }

    fn choose_kind(&mut self, kind: DecisionKind, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            // The executor resolves the pick through the kernel's
            // clamping `decide`, so the answer is already in range.
            self.y.yield_(Req::Choose(kind, n))
        }
    }

    /// Suspend until `pred` holds. The predicate must be a pure
    /// function of shared state (the executor calls it between steps).
    pub fn block_until(&mut self, pred: impl FnMut() -> bool + Send + 'static) {
        self.y.yield_(Req::Block(Box::new(pred)));
    }
}

/// Result of one controlled run.
#[derive(Debug, Clone)]
pub struct Run {
    /// Tasks remained but none was runnable.
    pub deadlocked: bool,
    /// The step budget was exhausted (livelock or runaway loop).
    pub diverged: bool,
    /// Every decision taken where >1 alternative existed, in order.
    /// Feeding this to [`ReplaySched`] reproduces the run exactly.
    pub decisions: Vec<usize>,
    /// The same decisions with their kind/arity metadata — the
    /// kernel's full record, artifact-dumpable via
    /// [`concur_decide::TraceArtifact`].
    pub trace: DecisionTrace,
    /// Total coroutine resumptions.
    pub steps: usize,
}

type TaskFn = Box<dyn FnOnce(&mut TaskCtx<'_>) + Send>;

enum Status {
    Ready,
    Blocked(Box<dyn FnMut() -> bool + Send>),
}

struct Slot {
    co: Option<Coroutine<usize, Req, ()>>,
    status: Status,
}

/// Builds a set of tasks and runs them to completion under a
/// scheduling policy.
#[derive(Default)]
pub struct Harness {
    tasks: Vec<TaskFn>,
}

/// Resumption budget per run; generous for the tiny fixtures this
/// harness drives, so hitting it means a livelock, not a big workload.
const MAX_STEPS: usize = 100_000;

impl Harness {
    pub fn new() -> Self {
        Harness { tasks: Vec::new() }
    }

    pub fn spawn(&mut self, f: impl FnOnce(&mut TaskCtx<'_>) + Send + 'static) {
        self.tasks.push(Box::new(f));
    }

    /// Run all tasks until everything finishes, deadlocks, or the step
    /// budget runs out. Unfinished coroutines are cancelled on drop.
    pub fn run(self, sched: &mut dyn Sched) -> Run {
        let mut slots: Vec<Slot> = self
            .tasks
            .into_iter()
            .map(|f| Slot {
                co: Some(Coroutine::new(move |y, _first| {
                    let mut ctx = TaskCtx { y };
                    f(&mut ctx);
                })),
                status: Status::Ready,
            })
            .collect();

        // Every consulted decision is recorded (clamped) by the kernel
        // wrapper; `decide` skips degenerate one-way decisions, so the
        // trace is exactly the run's nondeterminism.
        let mut rec = Recording::new(sched);
        let mut steps = 0usize;
        let mut last: Option<usize> = None;

        let finish = |rec: Recording<'_>, deadlocked: bool, diverged: bool, steps: usize| {
            let trace = rec.into_trace();
            Run { deadlocked, diverged, decisions: trace.picks(), trace, steps }
        };

        loop {
            let mut ready = Vec::new();
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.co.is_none() {
                    continue;
                }
                match &mut slot.status {
                    Status::Ready => ready.push(i),
                    Status::Blocked(pred) => {
                        if pred() {
                            ready.push(i);
                        }
                    }
                }
            }
            if ready.is_empty() {
                let live = slots.iter().any(|s| s.co.is_some());
                return finish(rec, live, false, steps);
            }

            let current = last.and_then(|l| ready.iter().position(|&i| i == l));
            let pos = rec.decide(DecisionKind::TaskPick, ready.len(), current);
            let ti = ready[pos];
            slots[ti].status = Status::Ready;
            last = Some(ti);

            let mut input = 0usize;
            loop {
                steps += 1;
                if steps > MAX_STEPS {
                    return finish(rec, false, true, steps);
                }
                let co = slots[ti].co.as_mut().expect("ready task is live");
                match co.resume(input) {
                    Resume::Yield(Req::Pause) => break,
                    Resume::Yield(Req::Choose(kind, n)) => {
                        input = rec.decide(kind, n, None);
                    }
                    Resume::Yield(Req::Block(pred)) => {
                        slots[ti].status = Status::Blocked(pred);
                        break;
                    }
                    Resume::Complete(()) => {
                        slots[ti].co = None;
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Shared;

    fn two_appenders() -> (Harness, Shared<Vec<i32>>) {
        let log = Shared::new(Vec::new());
        let mut h = Harness::new();
        for id in [1, 2] {
            let log = log.clone();
            h.spawn(move |ctx| {
                ctx.pause();
                log.with(|l| l.push(id));
                ctx.pause();
                log.with(|l| l.push(id * 10));
            });
        }
        (h, log)
    }

    #[test]
    fn replay_reproduces_a_random_run() {
        for seed in 0..20 {
            let (h, log) = two_appenders();
            let run = h.run(&mut RandomSched::new(seed));
            let order = log.with(|l| l.clone());

            let (h2, log2) = two_appenders();
            let run2 = h2.run(&mut ReplaySched::new(run.decisions.clone()));
            assert_eq!(order, log2.with(|l| l.clone()), "seed {seed}");
            assert_eq!(run.decisions, run2.decisions, "seed {seed}");
        }
    }

    #[test]
    fn random_seeds_cover_multiple_interleavings() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..40 {
            let (h, log) = two_appenders();
            h.run(&mut RandomSched::new(seed));
            seen.insert(log.with(|l| l.clone()));
        }
        assert!(seen.len() > 1, "40 seeds never diverged: {seen:?}");
    }

    #[test]
    fn deadlock_is_detected() {
        let gate = Shared::new(false);
        let mut h = Harness::new();
        let g = gate.clone();
        h.spawn(move |ctx| {
            ctx.block_until(move || g.with(|v| *v));
        });
        let run = h.run(&mut RandomSched::new(0));
        assert!(run.deadlocked);
        assert!(!run.diverged);
    }

    #[test]
    fn blocked_task_resumes_when_predicate_holds() {
        let gate = Shared::new(false);
        let done = Shared::new(false);
        let mut h = Harness::new();
        let (g1, d1) = (gate.clone(), done.clone());
        h.spawn(move |ctx| {
            ctx.block_until(move || g1.with(|v| *v));
            d1.with(|v| *v = true);
        });
        let g2 = gate.clone();
        h.spawn(move |ctx| {
            ctx.pause();
            g2.with(|v| *v = true);
        });
        let run = h.run(&mut RandomSched::new(3));
        assert!(!run.deadlocked);
        assert!(done.with(|v| *v));
    }

    #[test]
    fn choose_is_recorded_and_replayable() {
        let picks = Shared::new(Vec::new());
        let p = picks.clone();
        let mut h = Harness::new();
        h.spawn(move |ctx| {
            for _ in 0..3 {
                let c = ctx.choose(4);
                p.with(|v| v.push(c));
            }
        });
        let run = h.run(&mut RandomSched::new(7));
        let chosen = picks.with(|v| v.clone());
        assert_eq!(run.decisions, chosen, "a single task's only decisions are its chooses");
        assert!(chosen.iter().all(|&c| c < 4));
    }

    #[test]
    fn bounded_sched_zero_budget_runs_to_completion_without_preemption() {
        let (h, log) = two_appenders();
        let run = h.run(&mut BoundedSched::new(0, 0));
        assert!(!run.deadlocked);
        // Without preemptions the first task runs to its end before the
        // second starts — except at its own pauses where it stays
        // current, so the log is strictly [1, 10, 2, 20].
        assert_eq!(log.with(|l| l.clone()), vec![1, 10, 2, 20]);
    }
}
