//! # concur-conformance
//!
//! Cross-model conformance harness: the four runtimes' behaviours,
//! checked against the explorer's exhaustive possibility sets.
//!
//! The paper's evaluation instrument asks *what could happen* — each
//! figure lists a program's possible outputs, and the explorer in
//! `concur-exec` computes those lists mechanically. This crate closes
//! the loop in the other direction: it **runs** the classical problems
//! under all four programming models — threads, actors, coroutines,
//! and async tasks (`concur-tasks`) — on controlled, deterministic
//! schedulers, fuzzes the schedule space, and asserts that
//!
//! 1. every observed terminal state is a member of the explorer's
//!    exhaustively computed terminal set for the matching pseudocode
//!    model (*membership*),
//! 2. a run deadlocks only if the model provably can (*deadlock
//!    conformance*), and
//! 3. the observable-output sets of the four models agree with each
//!    other (*cross-model agreement*).
//!
//! Every fuzzed schedule is a recorded decision vector, so a failing
//! schedule replays deterministically and shrinks to a minimal
//! counterexample (see [`fuzz`]).
//!
//! | module | role |
//! |---|---|
//! | [`exec`] | deterministic serial executor + schedulers |
//! | [`sync`] | modelled shared-memory primitives (per-discipline granularity) |
//! | [`sim`] | modelled actor mailboxes with chosen delivery order |
//! | [`models`] | pseudocode models of the classical problems (incl. `TASKS_*` AWAIT renditions) |
//! | [`problems`] | the problems on the controlled executors, ×4 disciplines |
//! | [`fuzz`] | schedule fuzzing, membership oracle, shrinking |
//! | [`real`] | spot-checks of the *real* runtimes against the same models |

pub mod exec;
pub mod fuzz;
pub mod models;
pub mod problems;
pub mod real;
pub mod sim;
pub mod sync;

pub use exec::{BoundedSched, Harness, RandomSched, ReplaySched, Run, Sched, TaskCtx};
pub use fuzz::{fuzz_all, fuzz_problem, ConformanceError, FuzzConfig, ProblemReport};
pub use problems::{Discipline, Fixture, Outcome, FIXTURES};
