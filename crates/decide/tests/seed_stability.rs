//! Seed-stability pins for the decision kernel.
//!
//! Archived `TraceArtifact`s and `FUZZ_SEED` values in CI configs name
//! schedules by the *stream* a seeded [`RandomSource`] produces. If a
//! refactor of the kernel (or the `rand` shim underneath it) changed
//! that stream, every archived artifact and pinned seed would silently
//! start naming a different schedule. These tests pin the first draws
//! of representative seeds for every [`DecisionKind`], so such a
//! change fails loudly and must be shipped as a deliberate,
//! artifact-invalidating break.

use concur_decide::{ChoiceSource, DecisionKind, RandomSource};

/// First `len` draws of `seed`, arity `n`, all of one kind.
fn draws(seed: u64, kind: DecisionKind, n: usize, len: usize) -> Vec<usize> {
    let mut src = RandomSource::new(seed);
    (0..len).map(|_| src.decide(kind, n, None)).collect()
}

/// The canonical fuzz seed used by CI (`FUZZ_SEED=3405691582 =
/// 0xCAFEBABE`) and the library default (`0xC0FFEE`), pinned for every
/// decision kind. `RandomSource` is kind-oblivious by design — one
/// stream per seed, whatever question is asked — so every kind must
/// see the *same* pinned stream; a kind-dependent divergence would
/// break replay of mixed-kind traces.
#[test]
fn random_source_streams_are_pinned_per_kind() {
    const PIN_CAFEBABE_N3: [usize; 16] = [0, 1, 2, 0, 2, 1, 2, 0, 2, 1, 0, 2, 0, 0, 1, 1];
    const PIN_C0FFEE_N4: [usize; 16] = [0, 1, 0, 0, 3, 3, 2, 2, 0, 3, 0, 3, 1, 1, 2, 1];

    for kind in DecisionKind::ALL {
        assert_eq!(
            draws(0xCAFE_BABE, kind, 3, 16),
            PIN_CAFEBABE_N3,
            "seed 0xCAFEBABE stream changed for {kind:?} — archived artifacts now replay \
             differently"
        );
        assert_eq!(
            draws(0xC0_FFEE, kind, 4, 16),
            PIN_C0FFEE_N4,
            "seed 0xC0FFEE stream changed for {kind:?}"
        );
    }
}

/// The label vocabulary is part of the artifact format: renaming a
/// label (or forgetting one for a new kind) breaks `TraceArtifact`
/// parsing of archived schedules.
#[test]
fn kind_labels_are_pinned_and_distinct() {
    let labels: Vec<&str> = DecisionKind::ALL.iter().map(|k| k.label()).collect();
    assert_eq!(labels, ["task", "choice", "delivery", "chaos", "poll"]);
}

/// Labels round-trip through the artifact parser for every kind —
/// the exhaustiveness guard that forced this file to learn about
/// `Poll` also holds for whatever kind comes next.
#[test]
fn every_kind_round_trips_through_an_artifact() {
    use concur_decide::{Decision, DecisionTrace, TraceArtifact};
    let mut trace = DecisionTrace::new();
    for (i, kind) in DecisionKind::ALL.into_iter().enumerate() {
        trace.push(Decision { kind, arity: i + 2, picked: i % (i + 2) });
    }
    let art = TraceArtifact::from_trace("pin", "kinds", "none", &trace);
    let parsed = TraceArtifact::parse(&art.render()).expect("parses");
    assert_eq!(parsed.kinds, DecisionKind::ALL.to_vec());
}
