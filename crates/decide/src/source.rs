//! Choice sources: the policies that resolve scheduling decisions.
//!
//! A [`ChoiceSource`] is consulted through exactly two entry points —
//! [`ChoiceSource::decide`] and [`ChoiceSource::decide_forced`] — and
//! both clamp out-of-range picks centrally, so no consumer needs (or
//! is allowed) its own clamping convention. The difference between the
//! two entry points encodes the one historical divergence between the
//! repo's schedulers:
//!
//! * the conformance executor consults its policy **only when more
//!   than one alternative exists**, so a recorded vector is exactly
//!   the run's nondeterminism ([`ChoiceSource::decide`]);
//! * the explorer's drivers consult on **every** step, including
//!   forced singleton transitions, so pre-kernel seeds and witness
//!   scripts keep naming the same runs
//!   ([`ChoiceSource::decide_forced`]).

use crate::trace::{Decision, DecisionTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What kind of alternative a decision resolves. Purely descriptive —
/// sources may ignore it — but recorded into [`DecisionTrace`]s so an
/// artifact reads as a schedule, not a bare number list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionKind {
    /// Which ready task/thread/transition runs next.
    TaskPick,
    /// An internal nondeterministic choice inside a running task.
    Choice,
    /// Which pending message a mailbox delivers next.
    Delivery,
    /// A chaos perturbation point in a real runtime (e.g. "yield the
    /// time slice before taking this lock?").
    Chaos,
    /// Which ready task a single-threaded async executor polls next
    /// (the `concur-tasks` runtime's scheduling point).
    Poll,
}

impl DecisionKind {
    /// Short label used by trace artifacts.
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::TaskPick => "task",
            DecisionKind::Choice => "choice",
            DecisionKind::Delivery => "delivery",
            DecisionKind::Chaos => "chaos",
            DecisionKind::Poll => "poll",
        }
    }

    /// Every kind, in declaration order — the artifact parser and the
    /// seed-stability pins iterate this so a new kind cannot be added
    /// without updating both.
    pub const ALL: [DecisionKind; 5] = [
        DecisionKind::TaskPick,
        DecisionKind::Choice,
        DecisionKind::Delivery,
        DecisionKind::Chaos,
        DecisionKind::Poll,
    ];
}

/// A policy resolving `n`-way decisions.
///
/// Implementations provide [`ChoiceSource::next_raw`], which may
/// return any value; consumers call [`ChoiceSource::decide`] (or
/// [`ChoiceSource::decide_forced`]), which clamp into `0..n`. Do not
/// override the provided methods — they are the kernel's single
/// clamping point.
pub trait ChoiceSource {
    /// Produce a raw (possibly out-of-range) pick for an `n`-way
    /// decision. `hint` carries the position of the
    /// previously-running task among the alternatives, when it is
    /// still one of them, so preemption-bounded policies can prefer
    /// to continue it.
    fn next_raw(&mut self, kind: DecisionKind, n: usize, hint: Option<usize>) -> usize;

    /// Name used in reports.
    fn name(&self) -> &'static str {
        "source"
    }

    /// Resolve an `n`-way decision, consulting the source **only when
    /// a real alternative exists** (`n > 1`); degenerate decisions
    /// resolve to `0` for free. The returned pick is always in
    /// `0..n`. This is the conformance-executor convention: what the
    /// source sees is exactly the run's nondeterminism.
    fn decide(&mut self, kind: DecisionKind, n: usize, hint: Option<usize>) -> usize {
        if n <= 1 {
            0
        } else {
            self.next_raw(kind, n, hint).min(n - 1)
        }
    }

    /// Resolve an `n`-way decision, consulting the source even for
    /// forced singleton steps (`n == 1` still consumes a draw or a
    /// script entry). The explorer's drivers use this so seeds and
    /// witness scripts recorded before the kernel existed keep naming
    /// the same runs. The returned pick is always in `0..n`.
    fn decide_forced(&mut self, kind: DecisionKind, n: usize, hint: Option<usize>) -> usize {
        assert!(n > 0, "cannot decide among zero alternatives");
        self.next_raw(kind, n, hint).min(n - 1)
    }
}

/// Seeded uniformly random decisions — the fuzzing workhorse: one
/// `u64` names an entire schedule.
pub struct RandomSource {
    rng: StdRng,
}

impl RandomSource {
    /// Source seeded with `seed`; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        RandomSource { rng: StdRng::seed_from_u64(seed) }
    }
}

impl ChoiceSource for RandomSource {
    fn next_raw(&mut self, _kind: DecisionKind, n: usize, _hint: Option<usize>) -> usize {
        self.rng.gen_range(0..n)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Replays a recorded decision vector; entries past the end default to
/// `0` (first alternative). That default is what makes **truncation a
/// valid shrinking move**: any prefix of a valid schedule is itself a
/// valid schedule, completed with first-alternative picks.
pub struct ReplaySource {
    picks: Vec<usize>,
    pos: usize,
}

impl ReplaySource {
    /// Replay `picks` in order, then pad with `0`.
    pub fn new(picks: Vec<usize>) -> Self {
        ReplaySource { picks, pos: 0 }
    }

    /// How many entries have been consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl ChoiceSource for ReplaySource {
    fn next_raw(&mut self, _kind: DecisionKind, _n: usize, _hint: Option<usize>) -> usize {
        let d = self.picks.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        d
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

/// Systematic preemption-bounded enumeration: the schedule index is
/// decoded digit-by-digit in the mixed radix of the decisions
/// encountered, so consecutive indices enumerate distinct low-order
/// schedule variations; once the preemption budget is spent, the
/// previously-running task (the `hint`) is continued whenever it is
/// still ready — the classic CHESS heuristic (most concurrency bugs
/// need very few preemptions).
pub struct BoundedSource {
    digits: u64,
    preemptions_left: usize,
}

impl BoundedSource {
    /// Schedule number `index` under at most `preemption_bound`
    /// preemptions.
    pub fn new(index: u64, preemption_bound: usize) -> Self {
        BoundedSource { digits: index, preemptions_left: preemption_bound }
    }

    fn decode(&mut self, n: usize) -> usize {
        let d = (self.digits % n as u64) as usize;
        self.digits /= n as u64;
        d
    }
}

impl ChoiceSource for BoundedSource {
    fn next_raw(&mut self, _kind: DecisionKind, n: usize, hint: Option<usize>) -> usize {
        if let Some(cur) = hint {
            if self.preemptions_left == 0 {
                return cur;
            }
            let d = self.decode(n);
            if d != cur {
                self.preemptions_left -= 1;
            }
            d
        } else {
            self.decode(n)
        }
    }

    fn name(&self) -> &'static str {
        "bounded"
    }
}

/// Always picks the same index (clamped). `FixedSource::new(0)` is the
/// "first alternative" baseline — on a rotating ready queue (the
/// cooperative scheduler) that is exactly round-robin.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedSource {
    index: usize,
}

impl FixedSource {
    /// Source that always answers `index`.
    pub fn new(index: usize) -> Self {
        FixedSource { index }
    }
}

impl ChoiceSource for FixedSource {
    fn next_raw(&mut self, _kind: DecisionKind, _n: usize, _hint: Option<usize>) -> usize {
        self.index
    }

    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Rotates through positions `0, 1, 2, …` modulo the arity of each
/// decision — a fair deterministic baseline for alternative lists
/// that do *not* rotate themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinSource {
    next: usize,
}

impl RoundRobinSource {
    /// Rotation starting at position 0.
    pub fn new() -> Self {
        RoundRobinSource::default()
    }
}

impl ChoiceSource for RoundRobinSource {
    fn next_raw(&mut self, _kind: DecisionKind, n: usize, _hint: Option<usize>) -> usize {
        let p = self.next % n;
        self.next = p + 1;
        p
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Wraps any source and records every pick it actually resolves into a
/// [`DecisionTrace`]. Clamping happens *before* recording, so a
/// recorded trace replays verbatim: feeding it to [`ReplaySource`]
/// reproduces the identical run.
pub struct Recording<'s> {
    inner: &'s mut dyn ChoiceSource,
    trace: DecisionTrace,
}

impl<'s> Recording<'s> {
    /// Record every decision `inner` resolves.
    pub fn new(inner: &'s mut dyn ChoiceSource) -> Self {
        Recording { inner, trace: DecisionTrace::new() }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &DecisionTrace {
        &self.trace
    }

    /// Finish recording and take the trace.
    pub fn into_trace(self) -> DecisionTrace {
        self.trace
    }
}

impl ChoiceSource for Recording<'_> {
    fn next_raw(&mut self, kind: DecisionKind, n: usize, hint: Option<usize>) -> usize {
        // Clamp before recording so the trace replays verbatim even if
        // the wrapped source misbehaves.
        let picked = self.inner.next_raw(kind, n, hint).min(n.saturating_sub(1));
        self.trace.push(Decision { kind, arity: n, picked });
        picked
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite regression: before the kernel, `exec::schedule`
    /// trusted scheduler impls to stay in range while the conformance
    /// executor clamped at every call site. Both behaviors must now
    /// map onto the kernel's two (centrally clamping) entry points.
    #[test]
    fn clamping_is_central_and_covers_both_historical_conventions() {
        // Conformance convention (`decide`): out-of-range replay
        // entries clamp, degenerate decisions are free.
        let mut replay = ReplaySource::new(vec![99, 1, 7]);
        assert_eq!(replay.decide(DecisionKind::TaskPick, 3, None), 2, "99 clamps to n-1");
        assert_eq!(replay.decide(DecisionKind::TaskPick, 1, None), 0, "singleton is free");
        assert_eq!(replay.consumed(), 1, "singleton decisions consume no script entry");
        assert_eq!(replay.decide(DecisionKind::Choice, 4, None), 1, "in-range passes through");

        // Explorer convention (`decide_forced`): singleton steps still
        // consume an entry — exactly what `ReplayScheduler` always did
        // (`script[pos].min(len - 1)`, pos advancing every step).
        let mut replay = ReplaySource::new(vec![5, 5, 0]);
        assert_eq!(replay.decide_forced(DecisionKind::TaskPick, 2, None), 1);
        assert_eq!(replay.decide_forced(DecisionKind::TaskPick, 1, None), 0, "clamped to 0");
        assert_eq!(replay.consumed(), 2, "forced decisions consume entries even for n == 1");
    }

    #[test]
    fn replay_truncation_defaults_to_zero() {
        let mut s = ReplaySource::new(vec![2]);
        assert_eq!(s.decide(DecisionKind::TaskPick, 3, None), 2);
        for _ in 0..5 {
            assert_eq!(s.decide(DecisionKind::TaskPick, 3, None), 0, "past-the-end pads with 0");
        }
    }

    #[test]
    fn random_source_is_seed_deterministic() {
        let stream = |seed| {
            let mut s = RandomSource::new(seed);
            (0..32).map(|_| s.decide(DecisionKind::TaskPick, 5, None)).collect::<Vec<_>>()
        };
        assert_eq!(stream(9), stream(9));
        assert_ne!(stream(9), stream(10));
        assert!(stream(9).iter().all(|&p| p < 5));
    }

    #[test]
    fn bounded_source_decodes_mixed_radix_and_spends_the_preemption_budget() {
        // index 5 = 1 + 2*2 in radix (2, 3): digits 1 then 2.
        let mut s = BoundedSource::new(5, 9);
        assert_eq!(s.decide(DecisionKind::TaskPick, 2, None), 1);
        assert_eq!(s.decide(DecisionKind::Choice, 3, None), 2);
        assert_eq!(s.decide(DecisionKind::TaskPick, 3, None), 0, "exhausted digits decode to 0");

        // Zero budget: the hinted current task always continues.
        let mut s = BoundedSource::new(u64::MAX, 0);
        for cur in [0usize, 1, 2] {
            assert_eq!(s.decide(DecisionKind::TaskPick, 3, Some(cur)), cur);
        }

        // A budget of one allows exactly one switch away from the hint.
        let mut s = BoundedSource::new(u64::MAX, 1);
        let first = s.decide(DecisionKind::TaskPick, 2, Some(0));
        assert_eq!(first, 1, "all-ones digits pick the other task");
        assert_eq!(s.decide(DecisionKind::TaskPick, 2, Some(0)), 0, "budget now spent");
    }

    #[test]
    fn round_robin_rotates_and_fixed_stays_put() {
        let mut rr = RoundRobinSource::new();
        let picks: Vec<usize> =
            (0..6).map(|_| rr.decide(DecisionKind::TaskPick, 3, None)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);

        let mut fx = FixedSource::new(7);
        assert_eq!(fx.decide(DecisionKind::TaskPick, 3, None), 2, "clamped");
        assert_eq!(fx.decide(DecisionKind::TaskPick, 10, None), 7);
    }

    #[test]
    fn recording_captures_exactly_the_consulted_decisions() {
        let mut inner = ReplaySource::new(vec![4, 0, 1]);
        let mut rec = Recording::new(&mut inner);
        assert_eq!(rec.decide(DecisionKind::TaskPick, 3, None), 2);
        assert_eq!(rec.decide(DecisionKind::Choice, 1, None), 0, "not recorded");
        assert_eq!(rec.decide(DecisionKind::Delivery, 2, None), 0);
        let trace = rec.into_trace();
        assert_eq!(trace.picks(), vec![2, 0], "clamped values, singletons omitted");
        assert_eq!(trace.decisions[0].kind, DecisionKind::TaskPick);
        assert_eq!(trace.decisions[1].kind, DecisionKind::Delivery);

        // A recorded trace replays verbatim.
        let mut again = ReplaySource::new(trace.picks());
        assert_eq!(again.decide(DecisionKind::TaskPick, 3, None), 2);
        assert_eq!(again.decide(DecisionKind::Delivery, 2, None), 0);
    }
}
