//! # concur-decide
//!
//! The **decision kernel**: the one place in the workspace where "a
//! schedule" is defined.
//!
//! Every layer of this repo answers the same question over and over —
//! *which of the currently-possible alternatives fires next?* The
//! explorer picks among enabled interpreter transitions, the
//! conformance executor picks ready tasks and mailbox deliveries, the
//! real runtimes perturb lock acquisition order and mailbox dequeue
//! order. Before this crate existed each of those call sites carried
//! its own RNG, its own clamping convention and (only in the
//! conformance harness) its own record/replay/shrink machinery. Now
//! they all share:
//!
//! * a [`DecisionKind`]/[`Decision`] vocabulary naming *what* is being
//!   decided (task pick, internal choice, message delivery, chaos
//!   perturbation);
//! * the [`ChoiceSource`] trait with the canonical policies —
//!   [`RandomSource`] (seeded), [`ReplaySource`] (recorded trace,
//!   truncation defaults to 0), [`BoundedSource`] (systematic
//!   preemption-bounded enumeration), [`FixedSource`] and
//!   [`RoundRobinSource`];
//! * centralized clamping: out-of-range picks are clamped exactly once,
//!   in [`ChoiceSource::decide`] / [`ChoiceSource::decide_forced`],
//!   never at call sites;
//! * the [`DecisionTrace`] record/replay machinery plus the
//!   [`shrink`] minimizer and the textual [`artifact`] format, so a
//!   failing schedule found *anywhere* — fuzzer, property test, or a
//!   chaos-perturbed real-thread run — is dumped and replayed the same
//!   way.
//!
//! One `u64` seed or one decision vector names an entire schedule, in
//! every layer.

pub mod artifact;
pub mod source;
pub mod trace;

pub use artifact::TraceArtifact;
pub use source::{
    BoundedSource, ChoiceSource, DecisionKind, FixedSource, RandomSource, Recording, ReplaySource,
    RoundRobinSource,
};
pub use trace::{shrink, Decision, DecisionTrace};
