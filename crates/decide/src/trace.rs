//! Decision traces: the recorded form of a schedule.
//!
//! A [`DecisionTrace`] is the sequence of decisions a run actually
//! resolved, each with its [`DecisionKind`] and arity. The bare pick
//! vector ([`DecisionTrace::picks`]) fed to a [`ReplaySource`]
//! reproduces the run; the kind
//! and arity metadata make dumped artifacts legible and let tools
//! sanity-check a replay against the trace it came from.
//!
//! [`shrink`] minimizes a failing pick vector under the kernel's
//! replay convention: entries past the end of a truncated vector
//! default to `0`, so **any prefix of a valid schedule is a valid
//! schedule** — truncation and entry-zeroing are the two shrinking
//! moves, and both preserve replayability.

use crate::source::{DecisionKind, ReplaySource};

/// One resolved decision: what was decided, among how many
/// alternatives, and which was picked (always `picked < arity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// What kind of alternative this resolved.
    pub kind: DecisionKind,
    /// How many alternatives existed.
    pub arity: usize,
    /// The (clamped) pick.
    pub picked: usize,
}

/// A recorded schedule: every decision a run resolved, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionTrace {
    /// The decisions, in resolution order.
    pub decisions: Vec<Decision>,
}

impl DecisionTrace {
    /// An empty trace.
    pub fn new() -> Self {
        DecisionTrace::default()
    }

    /// Trace from a bare pick vector (kind/arity unknown — recorded
    /// as degenerate [`DecisionKind::Choice`] entries). Used when
    /// reconstructing a trace from a parsed artifact.
    pub fn from_picks(picks: &[usize]) -> Self {
        DecisionTrace {
            decisions: picks
                .iter()
                .map(|&picked| Decision { kind: DecisionKind::Choice, arity: 0, picked })
                .collect(),
        }
    }

    /// Append one decision.
    pub fn push(&mut self, d: Decision) {
        self.decisions.push(d);
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The bare pick vector — the replayable essence of the trace.
    pub fn picks(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.picked).collect()
    }

    /// A source replaying this trace (then padding with `0`).
    pub fn replay(&self) -> ReplaySource {
        ReplaySource::new(self.picks())
    }
}

/// Shrink a failing pick vector: repeatedly try shorter prefixes
/// (replay pads with 0, so truncation is always a valid schedule) and
/// zeroed entries, keeping any candidate that still fails. Trailing
/// zeros are dropped for free — padding makes them no-ops.
pub fn shrink(picks: Vec<usize>, mut still_fails: impl FnMut(&[usize]) -> bool) -> Vec<usize> {
    let trim = |mut v: Vec<usize>| {
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    };
    let mut cur = trim(picks);
    loop {
        let mut improved = false;
        let len = cur.len();
        for keep in [0, len / 4, len / 2, (3 * len) / 4, len.saturating_sub(1)] {
            if keep < len && still_fails(&cur[..keep]) {
                cur = trim(cur[..keep].to_vec());
                improved = true;
                break;
            }
        }
        if !improved {
            for i in 0..cur.len() {
                if cur[i] != 0 {
                    let mut cand = cur.clone();
                    cand[i] = 0;
                    if still_fails(&cand) {
                        cur = trim(cand);
                        improved = true;
                        break;
                    }
                }
            }
        }
        if !improved {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ChoiceSource;

    #[test]
    fn shrink_prefers_short_prefixes() {
        // Fails whenever the vector contains a nonzero entry at or
        // after index 2.
        let fails = |d: &[usize]| d.iter().skip(2).any(|&x| x != 0);
        let shrunk = shrink(vec![3, 1, 4, 1, 5, 9, 2, 6], fails);
        // Minimal forms are three entries ending in a nonzero.
        assert_eq!(shrunk.len(), 3, "shrunk to {shrunk:?}");
        assert!(shrunk[2] != 0);
    }

    #[test]
    fn shrink_zeroes_irrelevant_entries() {
        // Fails iff index 1 is exactly 7; everything else is noise.
        let fails = |d: &[usize]| d.get(1) == Some(&7);
        let shrunk = shrink(vec![5, 7, 3, 2, 8], fails);
        assert_eq!(shrunk, vec![0, 7]);
    }

    #[test]
    fn trace_replays_its_own_picks() {
        let mut trace = DecisionTrace::new();
        trace.push(Decision { kind: DecisionKind::TaskPick, arity: 3, picked: 2 });
        trace.push(Decision { kind: DecisionKind::Delivery, arity: 2, picked: 1 });
        let mut replay = trace.replay();
        assert_eq!(replay.decide(DecisionKind::TaskPick, 3, None), 2);
        assert_eq!(replay.decide(DecisionKind::Delivery, 2, None), 1);
        assert_eq!(replay.decide(DecisionKind::TaskPick, 4, None), 0, "padding");
    }
}
