//! The universal trace artifact format.
//!
//! Every layer that detects a scheduling failure — the conformance
//! fuzzer, a property test, or a chaos-perturbed real-runtime spot
//! check — dumps the same textual artifact, and any layer can parse
//! one back into a replayable pick vector. The format is line
//! oriented:
//!
//! ```text
//! # concur-decide trace artifact v1
//! problem: dining_naive
//! context: threads
//! failure: run deadlocked but the model admits no deadlock
//! decisions: [1, 0, 2]
//! kinds: task task delivery
//!
//! replay: feed `decisions` to concur_decide::ReplaySource::new(..)
//! ```
//!
//! `kinds` is optional metadata (absent when the trace was
//! reconstructed from a bare pick vector); everything after the blank
//! line is free-form commentary and ignored by the parser.

use crate::source::DecisionKind;
use crate::trace::DecisionTrace;

/// Header line identifying the format (and its version).
pub const HEADER: &str = "# concur-decide trace artifact v1";

/// One dumped (and parseable) schedule artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceArtifact {
    /// Which problem/scenario the schedule drove.
    pub problem: String,
    /// Which runtime or discipline produced it (e.g. `threads`,
    /// `actors`, `coroutines`, `real-chaos`).
    pub context: String,
    /// What went wrong.
    pub failure: String,
    /// The (shrunk) replayable pick vector.
    pub decisions: Vec<usize>,
    /// Per-decision kind labels, when the trace recorded them.
    pub kinds: Vec<DecisionKind>,
}

impl TraceArtifact {
    /// Artifact from a full trace (keeps kind metadata).
    pub fn from_trace(problem: &str, context: &str, failure: &str, trace: &DecisionTrace) -> Self {
        TraceArtifact {
            problem: problem.to_string(),
            context: context.to_string(),
            failure: failure.to_string(),
            decisions: trace.picks(),
            kinds: trace.decisions.iter().map(|d| d.kind).collect(),
        }
    }

    /// Artifact from a bare pick vector (e.g. after shrinking, which
    /// discards kind metadata).
    pub fn from_picks(problem: &str, context: &str, failure: &str, picks: &[usize]) -> Self {
        TraceArtifact {
            problem: problem.to_string(),
            context: context.to_string(),
            failure: failure.to_string(),
            decisions: picks.to_vec(),
            kinds: Vec::new(),
        }
    }

    /// Render the textual artifact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("problem: {}\n", self.problem));
        out.push_str(&format!("context: {}\n", self.context));
        out.push_str(&format!("failure: {}\n", self.failure));
        out.push_str(&format!("decisions: {:?}\n", self.decisions));
        if !self.kinds.is_empty() {
            let labels: Vec<&str> = self.kinds.iter().map(|k| k.label()).collect();
            out.push_str(&format!("kinds: {}\n", labels.join(" ")));
        }
        out.push_str(
            "\nreplay: feed `decisions` to concur_decide::ReplaySource::new(..) \
             (missing entries default to 0)\n",
        );
        out
    }

    /// Parse a rendered artifact back. Accepts any text containing the
    /// `problem:`/`context:`/`failure:`/`decisions:` fields; `kinds:`
    /// is optional.
    pub fn parse(text: &str) -> Result<Self, String> {
        let field = |name: &str| -> Option<String> {
            text.lines().find_map(|l| l.strip_prefix(name).map(|rest| rest.trim().to_string()))
        };
        let problem = field("problem:").ok_or("missing `problem:` field")?;
        let context = field("context:").ok_or("missing `context:` field")?;
        let failure = field("failure:").ok_or("missing `failure:` field")?;
        let raw = field("decisions:").ok_or("missing `decisions:` field")?;
        let inner = raw
            .trim()
            .strip_prefix('[')
            .and_then(|r| r.strip_suffix(']'))
            .ok_or_else(|| format!("decisions is not a [..] list: {raw}"))?;
        let decisions = inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| s.parse::<usize>().map_err(|e| format!("bad decision entry {s:?}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        let kinds = match field("kinds:") {
            None => Vec::new(),
            Some(line) => line
                .split_whitespace()
                .map(|label| {
                    DecisionKind::ALL
                        .into_iter()
                        .find(|k| k.label() == label)
                        .ok_or_else(|| format!("unknown decision kind label {label:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        if !kinds.is_empty() && kinds.len() != decisions.len() {
            return Err(format!(
                "kinds length {} does not match decisions length {}",
                kinds.len(),
                decisions.len()
            ));
        }
        Ok(TraceArtifact { problem, context, failure, decisions, kinds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Decision;

    #[test]
    fn artifact_round_trips_through_text() {
        let mut trace = DecisionTrace::new();
        trace.push(Decision { kind: DecisionKind::TaskPick, arity: 3, picked: 1 });
        trace.push(Decision { kind: DecisionKind::Chaos, arity: 7, picked: 0 });
        let art = TraceArtifact::from_trace("dining_naive", "real-chaos", "deadlock", &trace);
        let parsed = TraceArtifact::parse(&art.render()).expect("parses");
        assert_eq!(parsed, art);
        assert_eq!(parsed.decisions, vec![1, 0]);
        assert_eq!(parsed.kinds, vec![DecisionKind::TaskPick, DecisionKind::Chaos]);
    }

    #[test]
    fn artifact_without_kinds_round_trips() {
        let art = TraceArtifact::from_picks("bridge", "coroutines", "bad output", &[2, 0, 1]);
        let text = art.render();
        assert!(!text.contains("kinds:"));
        assert_eq!(TraceArtifact::parse(&text).expect("parses"), art);
    }

    #[test]
    fn parse_rejects_malformed_artifacts() {
        assert!(TraceArtifact::parse("problem: x\ncontext: y\nfailure: z").is_err());
        let bad_kinds = "problem: x\ncontext: y\nfailure: z\ndecisions: [1, 2]\nkinds: task\n";
        assert!(TraceArtifact::parse(bad_kinds).is_err());
        let bad_list = "problem: x\ncontext: y\nfailure: z\ndecisions: 1 2\n";
        assert!(TraceArtifact::parse(bad_list).is_err());
    }

    #[test]
    fn empty_decision_list_round_trips() {
        let art = TraceArtifact::from_picks("p", "c", "f", &[]);
        assert_eq!(TraceArtifact::parse(&art.render()).expect("parses").decisions, vec![]);
    }
}
