//! # concur-bench
//!
//! The benchmark harness: one Criterion target per evaluation artifact
//! (see `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md`
//! for recorded results).
//!
//! | Target | What it measures |
//! |---|---|
//! | `paradigm_spawn` | task creation: thread vs actor vs coroutine |
//! | `paradigm_comm` | hand-off: monitor vs ask round-trip vs resume/yield |
//! | `problems` | the same classical problems under all three models |
//! | `primitives` | lock implementations, semaphore, rwlock policies |
//! | `explorer` | model-checker throughput on the figure/bridge programs |
//! | `parser` | pseudocode parse/compile throughput |
//! | `study` | the full Table II/III regeneration pipeline |
//! | `ablations` | stackful vs stackless coroutines; FIFO vs chaos mailboxes |
//!
//! Run everything with `cargo bench`, one target with
//! `cargo bench --bench problems`.

/// Standard small workloads shared by bench targets so numbers are
/// comparable across runs.
pub mod workloads {
    use concur_problems::{bounded_buffer, bridge, dining, party_matching, sleeping_barber};

    pub fn bridge_config() -> bridge::Config {
        bridge::Config { red_cars: 2, blue_cars: 2, crossings_per_car: 3, fair_batch: Some(2) }
    }

    pub fn buffer_config() -> bounded_buffer::Config {
        bounded_buffer::Config { producers: 2, consumers: 2, items_per_producer: 50, capacity: 4 }
    }

    pub fn dining_config() -> dining::Config {
        dining::Config { philosophers: 5, meals_per_philosopher: 4 }
    }

    pub fn barber_config() -> sleeping_barber::Config {
        sleeping_barber::Config { barbers: 2, chairs: 3, customers: 20 }
    }

    pub fn party_config() -> party_matching::Config {
        party_matching::Config { boys: 6, girls: 6 }
    }
}
