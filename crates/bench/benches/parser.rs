//! Pseudocode front-end throughput: lex+parse, lowering, and full
//! compilation of the Test-1 bridge programs (the largest pseudocode
//! sources in the repo).

use concur_exec::compile;
use concur_pseudocode::{lower::lower_program, parse, pretty};
use concur_study::bridge::{BRIDGE_MESSAGE_PASSING, BRIDGE_SHARED_MEMORY};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend");
    for (name, source) in
        [("sm_bridge", BRIDGE_SHARED_MEMORY), ("mp_bridge", BRIDGE_MESSAGE_PASSING)]
    {
        group.throughput(Throughput::Bytes(source.len() as u64));
        group.bench_function(BenchmarkId::new("parse", name), |b| {
            b.iter(|| parse(source).expect("parses"));
        });
        let parsed = parse(source).unwrap();
        group.bench_function(BenchmarkId::new("lower", name), |b| {
            b.iter(|| lower_program(parsed.clone()));
        });
        group.bench_function(BenchmarkId::new("compile", name), |b| {
            b.iter(|| compile(&parsed).expect("compiles"));
        });
        group.bench_function(BenchmarkId::new("pretty", name), |b| {
            b.iter(|| pretty::program(&parsed));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
