//! Decision-kernel microbenchmarks: what one scheduling decision
//! costs through each canonical `ChoiceSource`, and what the
//! record-for-replay wrapper adds on top.
//!
//! Every task pick in the explorer, every mailbox delivery in the
//! controlled executor, and every chaos perturbation in the real
//! runtimes is one `decide` call, so the per-decision cost here bounds
//! the kernel's overhead on everything else in the workspace.

use concur_decide::{
    BoundedSource, ChoiceSource, DecisionKind, FixedSource, RandomSource, Recording, ReplaySource,
    RoundRobinSource,
};
use criterion::{criterion_group, criterion_main, Criterion};

const ARITY: usize = 4;

fn bench_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide_per_decision");

    let mut random = RandomSource::new(42);
    group.bench_function("random", |b| {
        b.iter(|| random.decide(DecisionKind::TaskPick, ARITY, None))
    });

    // A long recorded vector, re-armed per batch via iter_custom so
    // steady-state replay (not exhausted-padding) dominates.
    group.bench_function("replay", |b| {
        b.iter_custom(|iters| {
            let picks: Vec<usize> = (0..iters as usize).map(|i| i % ARITY).collect();
            let mut replay = ReplaySource::new(picks);
            let start = std::time::Instant::now();
            for _ in 0..iters {
                replay.decide(DecisionKind::TaskPick, ARITY, None);
            }
            start.elapsed()
        })
    });

    group.bench_function("replay_exhausted_pad0", |b| {
        let mut replay = ReplaySource::new(Vec::new());
        b.iter(|| replay.decide(DecisionKind::TaskPick, ARITY, None))
    });

    // Systematic enumeration: one schedule drawn from the middle of a
    // preemption-bounded space (decode + budget bookkeeping per call).
    group.bench_function("systematic_bounded", |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            let mut idx = 0u64;
            let mut left = iters;
            while left > 0 {
                let batch = left.min(64);
                let mut bounded = BoundedSource::new(idx, 2);
                idx += 1;
                let start = std::time::Instant::now();
                for _ in 0..batch {
                    bounded.decide(DecisionKind::TaskPick, ARITY, Some(0));
                }
                total += start.elapsed();
                left -= batch;
            }
            total
        })
    });

    let mut fixed = FixedSource::new(0);
    group.bench_function("fixed", |b| b.iter(|| fixed.decide(DecisionKind::TaskPick, ARITY, None)));

    let mut rr = RoundRobinSource::new();
    group.bench_function("round_robin", |b| {
        b.iter(|| rr.decide(DecisionKind::TaskPick, ARITY, None))
    });

    group.finish();
}

fn bench_recording_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide_recording_overhead");

    let mut bare = RandomSource::new(42);
    group.bench_function("random_bare", |b| {
        b.iter(|| bare.decide(DecisionKind::TaskPick, ARITY, None))
    });

    // Recording appends to the trace, so bound the batch to keep the
    // trace allocation out of steady state measurements.
    group.bench_function("random_recorded", |b| {
        b.iter_custom(|iters| {
            let mut inner = RandomSource::new(42);
            let mut rec = Recording::new(&mut inner);
            let start = std::time::Instant::now();
            for _ in 0..iters {
                rec.decide(DecisionKind::TaskPick, ARITY, None);
            }
            start.elapsed()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sources, bench_recording_overhead);
criterion_main!(benches);
