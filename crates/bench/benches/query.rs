//! Build-once-query-many: what the memoized query layer buys.
//!
//! Measures the Test-1 question bank and a fuzz-style admits_trace
//! campaign three ways — legacy direct explorer (one exploration per
//! query), cold session (first query per cache key builds a state
//! graph), warm session (every query reads a cached graph) — and
//! emits the numbers as machine-readable JSON for CI trending:
//! build time, per-query time, and hit rate, written to
//! `target/BENCH_query.json` (override with `BENCH_QUERY_JSON`).
//!
//! Pass `--quick` (or the smoke harness's `--test`) to shrink the
//! campaign; the JSON is emitted in every mode.

use concur_conformance::models;
use concur_exec::explore::{Explorer, Limits};
use concur_exec::{EventKindPattern, EventPattern, Interp, QueryCache, Session};
use concur_study::questions::{bank, interp_for};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "--test")
}

fn json_path() -> std::path::PathBuf {
    std::env::var_os("BENCH_QUERY_JSON").map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_query.json")
    })
}

struct CampaignNumbers {
    queries: usize,
    legacy_wall: Duration,
    cold_wall: Duration,
    warm_wall: Duration,
    build_wall: Duration,
    builds: usize,
    warm_hit_rate: f64,
}

impl CampaignNumbers {
    fn json(&self, name: &str) -> String {
        format!(
            "  \"{name}\": {{\n    \"queries\": {},\n    \"legacy_wall_s\": {:.6},\n    \
             \"cold_wall_s\": {:.6},\n    \"warm_wall_s\": {:.6},\n    \"build_wall_s\": {:.6},\n    \
             \"graph_builds\": {},\n    \"warm_per_query_s\": {:.9},\n    \
             \"warm_hit_rate\": {:.4}\n  }}",
            self.queries,
            self.legacy_wall.as_secs_f64(),
            self.cold_wall.as_secs_f64(),
            self.warm_wall.as_secs_f64(),
            self.build_wall.as_secs_f64(),
            self.builds,
            self.warm_wall.as_secs_f64() / self.queries.max(1) as f64,
            self.warm_hit_rate,
        )
    }
}

/// The 16-question bank: legacy (16 direct explorations) vs session
/// cold pass (one graph build per distinct cache key) vs warm pass
/// (pure cache reads).
fn measure_bank() -> CampaignNumbers {
    let limits = Limits::default();
    let questions = bank();

    let begin = Instant::now();
    for q in &questions {
        let answer = Explorer::with_limits(interp_for(q.section), limits)
            .can_happen(&q.setup, &q.scenario)
            .expect("explores");
        assert_eq!(answer.is_yes(), q.expected, "{}", q.id);
    }
    let legacy_wall = begin.elapsed();

    let cache = Arc::new(QueryCache::new());
    let ask = |q: &concur_study::questions::Question| {
        Session::with_limits(interp_for(q.section), limits)
            .with_cache(Arc::clone(&cache))
            .can_happen(&q.setup, &q.scenario)
            .expect("explores")
    };
    let begin = Instant::now();
    let mut build_wall = Duration::ZERO;
    for q in &questions {
        let (answer, stats) = Session::with_limits(interp_for(q.section), limits)
            .with_cache(Arc::clone(&cache))
            .can_happen_with_stats(&q.setup, &q.scenario)
            .expect("explores");
        assert_eq!(answer.is_yes(), q.expected, "{}", q.id);
        if stats.cache_misses > 0 {
            build_wall += stats.build_wall;
        }
    }
    let cold_wall = begin.elapsed();
    let builds = cache.stats().builds;

    let before_warm = cache.stats();
    let begin = Instant::now();
    for q in &questions {
        ask(q);
    }
    let warm_wall = begin.elapsed();
    let after_warm = cache.stats();
    let warm_hits = after_warm.hits - before_warm.hits;
    let warm_total = questions.len();

    CampaignNumbers {
        queries: questions.len(),
        legacy_wall,
        cold_wall,
        warm_wall,
        build_wall,
        builds,
        warm_hit_rate: warm_hits as f64 / warm_total as f64,
    }
}

/// A fuzz-oracle-style campaign over one conformance model: every
/// model output re-asked as an ordered Printed-token trace, several
/// rounds — the conformance harness's admits_trace hot path. All
/// trace queries share one graph (Printed text is coarsened out of
/// the cache key).
fn measure_campaign(rounds: usize) -> CampaignNumbers {
    let interp = Interp::from_source(models::BOUNDED_BUFFER).expect("model compiles");
    let outputs = {
        let session = Session::new(&interp).with_cache(Arc::new(QueryCache::new()));
        session.terminals().expect("explores").outputs()
    };
    let traces: Vec<Vec<EventPattern>> = outputs
        .iter()
        .map(|obs| {
            obs.split_whitespace()
                .map(|tok| EventPattern::any(EventKindPattern::Printed { text: tok.to_string() }))
                .collect()
        })
        .collect();
    let queries = traces.len() * rounds;

    let explorer = Explorer::new(&interp);
    let begin = Instant::now();
    for _ in 0..rounds {
        for trace in &traces {
            assert!(explorer.admits_trace(trace).expect("explores").is_yes());
        }
    }
    let legacy_wall = begin.elapsed();

    let cache = Arc::new(QueryCache::new());
    let session = Session::new(&interp).with_cache(Arc::clone(&cache));
    let begin = Instant::now();
    let mut build_wall = Duration::ZERO;
    for trace in &traces {
        let (answer, stats) = session.can_happen_with_stats(&[], trace).expect("explores");
        assert!(answer.is_yes());
        if stats.cache_misses > 0 {
            build_wall += stats.build_wall;
        }
    }
    let cold_wall = begin.elapsed();
    let builds = cache.stats().builds;

    // The cache is populated by the cold pass above, so a full
    // `rounds` re-run is the steady-state (all-hits) cost of the same
    // campaign the legacy loop paid exploration for.
    let before_warm = cache.stats();
    let begin = Instant::now();
    for _ in 0..rounds {
        for trace in &traces {
            assert!(session.admits_trace(trace).expect("explores").is_yes());
        }
    }
    let warm_wall = begin.elapsed();
    let after_warm = cache.stats();
    let warm_queries = traces.len() * rounds;
    let warm_hits = after_warm.hits - before_warm.hits;

    CampaignNumbers {
        queries,
        legacy_wall,
        cold_wall,
        warm_wall,
        build_wall,
        builds,
        warm_hit_rate: warm_hits as f64 / warm_queries as f64,
    }
}

fn emit_json(bank: &CampaignNumbers, campaign: &CampaignNumbers) {
    let path = json_path();
    let body =
        format!("{{\n{},\n{}\n}}\n", bank.json("question_bank"), campaign.json("fuzz_campaign"));
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, &body).expect("write BENCH_query.json");
    println!("query/json: wrote {}", path.display());
    print!("{body}");
}

fn bench_query(c: &mut Criterion) {
    let rounds = if quick_mode() { 3 } else { 20 };
    let bank_numbers = measure_bank();
    let campaign_numbers = measure_campaign(rounds);
    assert!(
        bank_numbers.warm_hit_rate >= 1.0,
        "warm bank pass must be pure hits (got {:.2})",
        bank_numbers.warm_hit_rate
    );
    assert!(
        campaign_numbers.warm_hit_rate >= 1.0,
        "warm campaign must be pure hits (got {:.2})",
        campaign_numbers.warm_hit_rate
    );
    emit_json(&bank_numbers, &campaign_numbers);

    let mut group = c.benchmark_group("query");
    group.sample_size(10);

    // Warm bank pass: all 16 questions against an already-populated
    // cache — the steady-state cost the study harness pays.
    let warm_cache = Arc::new(QueryCache::new());
    let limits = Limits::default();
    for q in bank() {
        Session::with_limits(interp_for(q.section), limits)
            .with_cache(Arc::clone(&warm_cache))
            .can_happen(&q.setup, &q.scenario)
            .expect("explores");
    }
    group.bench_function("bank_warm_16_questions", |b| {
        b.iter(|| {
            for q in bank() {
                let answer = Session::with_limits(interp_for(q.section), limits)
                    .with_cache(Arc::clone(&warm_cache))
                    .can_happen(&q.setup, &q.scenario)
                    .expect("explores");
                assert_eq!(answer.is_yes(), q.expected);
            }
        });
    });

    // Cold graph build for one conformance model (the per-key price).
    let buffer = Interp::from_source(models::BOUNDED_BUFFER).expect("compiles");
    group.bench_function("bounded_buffer_cold_build", |b| {
        b.iter(|| {
            let session = Session::new(&buffer).with_cache(Arc::new(QueryCache::new()));
            assert!(!session.terminals().expect("explores").stats.truncated);
        });
    });

    // Warm admits_trace (the fuzz oracle's steady-state re-query).
    let warm = Session::new(&buffer).with_cache(Arc::new(QueryCache::new()));
    let outputs = warm.terminals().expect("explores").outputs();
    let trace: Vec<EventPattern> = outputs[0]
        .split_whitespace()
        .map(|tok| EventPattern::any(EventKindPattern::Printed { text: tok.to_string() }))
        .collect();
    warm.admits_trace(&trace).expect("explores");
    group.bench_function("bounded_buffer_warm_admits_trace", |b| {
        b.iter(|| {
            assert!(warm.admits_trace(&trace).expect("explores").is_yes());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
