//! Model-checker throughput: exhaustive enumeration of the figure
//! programs and the Test-1 bridges, plus one full question
//! verification. These regenerate the Figures 3–5 possibility lists
//! and a Figure-6 answer, timed — and before timing, a one-shot
//! report of what partial-order reduction plus corridor compression
//! buy over the naive search on the same programs, asserting the
//! claimed floor (at least 2x fewer states visited on the Figure 3
//! three-way interleaving and on the bridge programs).
//!
//! Every explorer here is pinned to one thread: this bench measures
//! the serial engine regardless of `CONCUR_EXPLORE_THREADS`, and its
//! state-count assertions assume serial DFS accounting. Parallel
//! scaling is measured by the `explorer_par` bench.

use concur_exec::explore::{Explorer, Limits, Stats};
use concur_exec::figures::{FIG3_INTERLEAVED, FIG5_MESSAGE_PASSING};
use concur_exec::Interp;
use concur_study::bridge::{BRIDGE_MESSAGE_PASSING, BRIDGE_SHARED_MEMORY};
use concur_study::questions::{bank, model_check, Section};
use criterion::{criterion_group, criterion_main, Criterion};

fn fmt_stats(stats: &Stats) -> String {
    format!(
        "{} states, {} transitions, {} ample / {} pruned, peak stack {} B, {:?}{}",
        stats.states_visited,
        stats.transitions,
        stats.por_ample_states,
        stats.por_pruned_choices,
        stats.peak_stack_bytes,
        stats.wall,
        if stats.truncated { " (TRUNCATED)" } else { "" },
    )
}

/// Run the acceptance programs through both explorers once and print
/// the reduction. Asserts the documented floors so a regression in
/// the reduction machinery fails the bench run loudly.
fn report_por_reduction() {
    let limits = Limits { max_states: 2_000_000, max_depth: 50_000, max_setup_states: 4096 };
    for (name, src) in [("fig3_interleaved", FIG3_INTERLEAVED), ("sm_bridge", BRIDGE_SHARED_MEMORY)]
    {
        let interp = Interp::from_source(src).unwrap();
        let naive = Explorer::with_limits(&interp, limits)
            .with_threads(1)
            .without_por()
            .terminals()
            .unwrap();
        let por = Explorer::with_limits(&interp, limits).with_threads(1).terminals().unwrap();
        assert_eq!(por.terminals, naive.terminals, "{name}: reduction changed the terminal set");
        assert!(
            naive.stats.states_visited >= 2 * por.stats.states_visited,
            "{name}: expected >= 2x state reduction, got {} vs {}",
            naive.stats.states_visited,
            por.stats.states_visited,
        );
        println!("por-reduction/{name}/naive: {}", fmt_stats(&naive.stats));
        println!("por-reduction/{name}/por:   {}", fmt_stats(&por.stats));
    }
    // The message-passing bridge: the naive space does not fit any
    // practical bound, so cap it and compare against the *complete*
    // reduced exploration.
    let interp = Interp::from_source(BRIDGE_MESSAGE_PASSING).unwrap();
    let cap = Limits { max_states: 150_000, max_depth: 50_000, max_setup_states: 4096 };
    let naive =
        Explorer::with_limits(&interp, cap).with_threads(1).without_por().terminals().unwrap();
    let por = Explorer::with_limits(&interp, limits).with_threads(1).terminals().unwrap();
    assert!(naive.stats.truncated, "naive mp-bridge search unexpectedly finished");
    assert!(!por.stats.truncated, "reduced mp-bridge search should be complete");
    assert!(
        naive.stats.states_visited >= 2 * por.stats.states_visited,
        "mp_bridge: naive hit its {}-state cap before 2x the reduced total ({})",
        naive.stats.states_visited,
        por.stats.states_visited,
    );
    println!("por-reduction/mp_bridge/naive: {} (capped)", fmt_stats(&naive.stats));
    println!("por-reduction/mp_bridge/por:   {} (complete)", fmt_stats(&por.stats));
}

fn bench_explorer(c: &mut Criterion) {
    report_por_reduction();

    let mut group = c.benchmark_group("explorer");
    group.sample_size(10);

    let fig3 = Interp::from_source(FIG3_INTERLEAVED).unwrap();
    group.bench_function("fig3_terminals", |b| {
        b.iter(|| {
            let set = Explorer::new(&fig3).with_threads(1).terminals().unwrap();
            assert_eq!(set.outputs().len(), 3);
        });
    });
    group.bench_function("fig3_terminals_naive", |b| {
        b.iter(|| {
            let set = Explorer::new(&fig3).with_threads(1).without_por().terminals().unwrap();
            assert_eq!(set.outputs().len(), 3);
        });
    });

    let fig5 = Interp::from_source(FIG5_MESSAGE_PASSING).unwrap();
    group.bench_function("fig5_terminals", |b| {
        b.iter(|| {
            let set = Explorer::new(&fig5).with_threads(1).terminals().unwrap();
            assert_eq!(set.outputs().len(), 2);
        });
    });

    let bridge = Interp::from_source(BRIDGE_SHARED_MEMORY).unwrap();
    group.bench_function("sm_bridge_full_space", |b| {
        b.iter(|| {
            let set = Explorer::new(&bridge).with_threads(1).terminals().unwrap();
            assert!(!set.has_deadlock());
        });
    });
    group.bench_function("sm_bridge_full_space_naive", |b| {
        b.iter(|| {
            let set = Explorer::new(&bridge).with_threads(1).without_por().terminals().unwrap();
            assert!(!set.has_deadlock());
        });
    });

    // The message-passing bridge's full space, tractable only with
    // the reduction on (the naive search is measured — capped — in
    // the report above).
    let mp_bridge = Interp::from_source(BRIDGE_MESSAGE_PASSING).unwrap();
    let mp_limits = Limits { max_states: 2_000_000, max_depth: 50_000, max_setup_states: 4096 };
    group.sample_size(2);
    group.bench_function("mp_bridge_full_space", |b| {
        b.iter(|| {
            let set =
                Explorer::with_limits(&mp_bridge, mp_limits).with_threads(1).terminals().unwrap();
            assert!(!set.stats.truncated);
        });
    });
    group.sample_size(10);

    // One representative Test-1 question (Figure 6's sample, SM-m),
    // under the same default limits the study harness uses.
    let sm_m =
        bank().into_iter().find(|q| q.id == "SM-m" && q.section == Section::SharedMemory).unwrap();
    group.bench_function("figure6_question_m", |b| {
        b.iter(|| {
            let answer = model_check(&sm_m, Limits::default());
            assert!(matches!(answer, concur_exec::Answer::Yes { .. }));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_explorer);
criterion_main!(benches);
