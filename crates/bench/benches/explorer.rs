//! Model-checker throughput: exhaustive enumeration of the figure
//! programs and the Test-1 bridge, plus one full question
//! verification. These regenerate the Figures 3–5 possibility lists
//! and a Figure-6 answer, timed.

use concur_exec::explore::{Explorer, Limits};
use concur_exec::figures::{FIG3_INTERLEAVED, FIG5_MESSAGE_PASSING};
use concur_exec::Interp;
use concur_study::bridge::BRIDGE_SHARED_MEMORY;
use concur_study::questions::{bank, model_check, Section};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_explorer(c: &mut Criterion) {
    let mut group = c.benchmark_group("explorer");
    group.sample_size(10);

    let fig3 = Interp::from_source(FIG3_INTERLEAVED).unwrap();
    group.bench_function("fig3_terminals", |b| {
        b.iter(|| {
            let set = Explorer::new(&fig3).terminals().unwrap();
            assert_eq!(set.outputs().len(), 3);
        });
    });

    let fig5 = Interp::from_source(FIG5_MESSAGE_PASSING).unwrap();
    group.bench_function("fig5_terminals", |b| {
        b.iter(|| {
            let set = Explorer::new(&fig5).terminals().unwrap();
            assert_eq!(set.outputs().len(), 2);
        });
    });

    let bridge = Interp::from_source(BRIDGE_SHARED_MEMORY).unwrap();
    group.bench_function("sm_bridge_full_space", |b| {
        b.iter(|| {
            let set = Explorer::new(&bridge).terminals().unwrap();
            assert!(!set.has_deadlock());
        });
    });

    // One representative Test-1 question (Figure 6's sample, SM-m).
    let sm_m = bank()
        .into_iter()
        .find(|q| q.id == "SM-m" && q.section == Section::SharedMemory)
        .unwrap();
    let limits = Limits { max_states: 400_000, max_depth: 20_000, max_setup_states: 4096 };
    group.bench_function("figure6_question_m", |b| {
        b.iter(|| {
            let answer = model_check(&sm_m, limits);
            assert!(matches!(answer, concur_exec::Answer::Yes { .. }));
        });
    });

    group.finish();
}

criterion_group!(benches, bench_explorer);
criterion_main!(benches);
