//! Task-creation cost across the three models — the first axis of the
//! course's "investigate the efficiency of these implementations"
//! exercise (§II): OS thread spawn vs actor spawn vs coroutine
//! creation.

use concur_actors::{Actor, ActorSystem, Context};
use concur_coroutines::{Coroutine, Resume};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

struct Nop;
impl Actor for Nop {
    type Msg = ();
    fn receive(&mut self, (): (), ctx: &mut Context<'_, ()>) {
        ctx.stop();
    }
}

fn bench_spawn(c: &mut Criterion) {
    let mut group = c.benchmark_group("spawn");
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("threads", "spawn+join"), |b| {
        b.iter(|| {
            std::thread::spawn(|| std::hint::black_box(1 + 1)).join().unwrap();
        });
    });

    // Actor spawn + one message + stop, on a long-lived system (as in
    // real deployments; the dispatcher is shared).
    let system = ActorSystem::new(1);
    group.bench_function(BenchmarkId::new("actors", "spawn+msg+stop"), |b| {
        b.iter(|| {
            let actor = system.spawn(Nop);
            actor.send(());
        });
    });

    group.bench_function(BenchmarkId::new("coroutines", "create+resume+finish"), |b| {
        b.iter(|| {
            let mut co: Coroutine<i32, (), i32> = Coroutine::new(|_, x| x + 1);
            assert!(matches!(co.resume(1), Resume::Complete(2)));
        });
    });

    group.finish();
    drop(system);
}

criterion_group!(benches, bench_spawn);
criterion_main!(benches);
