//! Communication / hand-off cost across the three models: monitor
//! ping-pong between two threads, actor ask round-trip, and coroutine
//! resume/yield transfer. The expected shape (which the course asks
//! students to discover): coroutine transfers cost far less than actor
//! messages or monitor hand-offs, because cooperative transfer has no
//! contended synchronization.

use concur_actors::ask::Resolver;
use concur_actors::{ask, Actor, ActorSystem, Context};
use concur_coroutines::{Coroutine, Resume};
use concur_threads::Monitor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

struct Echo;
impl Actor for Echo {
    type Msg = (u64, Resolver<u64>);
    fn receive(&mut self, (n, reply): (u64, Resolver<u64>), _ctx: &mut Context<'_, Self::Msg>) {
        reply.resolve(n + 1);
    }
}

fn bench_comm(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_roundtrip");
    group.sample_size(20);

    // Threads: two threads alternate via a monitor turn variable; one
    // iteration = one full hand-off pair.
    group.bench_function("threads_monitor_handoff", |b| {
        b.iter_custom(|iters| {
            let turn = Arc::new(Monitor::new(0u64));
            let t2 = Arc::clone(&turn);
            let pong = std::thread::spawn(move || {
                for i in 0..iters {
                    t2.when(|t| *t == 2 * i + 1, |t| *t += 1);
                }
            });
            let start = std::time::Instant::now();
            for i in 0..iters {
                turn.when(|t| *t == 2 * i, |t| *t += 1);
            }
            pong.join().unwrap();
            start.elapsed()
        });
    });

    // Actors: ask round-trip through a dispatcher.
    let system = ActorSystem::new(1);
    let echo = system.spawn(Echo);
    group.bench_function("actors_ask_roundtrip", |b| {
        b.iter(|| {
            let r = ask(&echo, |reply| (1, reply), Duration::from_secs(10));
            assert_eq!(r, Some(2));
        });
    });

    // Coroutines: resume/yield pair (two control transfers).
    let mut counter = Coroutine::new(|y, first: u64| {
        let mut n = first;
        loop {
            n = y.yield_(n + 1);
        }
    });
    group.bench_function("coroutines_resume_yield", |b| {
        b.iter(|| match counter.resume(1) {
            Resume::Yield(v) => assert_eq!(v, 2),
            Resume::Complete(_) => unreachable!(),
        });
    });

    group.finish();
    drop(system);
}

criterion_group!(benches, bench_comm);
criterion_main!(benches);
