//! The study pipeline, timed: cohort construction, Test-1
//! administration/grading (Tables II and III), and the complete
//! report.

use concur_study::cohort::paper_cohort;
use concur_study::grading::{administer_test1, DEFAULT_LEARNING_DROP};
use concur_study::report::{compute_table2, run_study};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("study");

    group.bench_function("cohort_construction", |b| {
        b.iter(|| paper_cohort(42));
    });

    let cohort = paper_cohort(42);
    group.bench_function("administer_and_grade_test1", |b| {
        b.iter(|| administer_test1(&cohort, 42, DEFAULT_LEARNING_DROP));
    });

    let results = administer_test1(&cohort, 42, DEFAULT_LEARNING_DROP);
    group.bench_function("table2_statistics", |b| {
        b.iter(|| compute_table2(&results));
    });

    group.bench_function("full_study_run", |b| {
        b.iter(|| {
            let report = run_study(42);
            assert!(report.table2.session_p < 0.05);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_study);
criterion_main!(benches);
