//! Ablations for the design choices DESIGN.md calls out:
//!
//! * stackful coroutines (OS-thread baton passing) vs stackless state
//!   machines — the cost of real stacks;
//! * FIFO vs chaos mailboxes — the overhead of making the Actor
//!   model's reordering observable;
//! * footprint-scoped `EXC_ACC` locking vs a single global lock in the
//!   interpreter — what per-variable exclusion buys in reachable
//!   parallelism (measured as explored state count).

use concur_actors::{DeliveryMode, Mailbox};
use concur_coroutines::stackless::{FibMachine, Step, StepCoroutine};
use concur_coroutines::{Coroutine, Resume};
use concur_exec::explore::Explorer;
use concur_exec::Interp;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_coroutine_flavours(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_coroutine");

    group.bench_function("stackful_fib30", |b| {
        b.iter(|| {
            let mut gen = Coroutine::new(|y, _: ()| {
                let (mut a, mut b) = (0u64, 1u64);
                for _ in 0..30 {
                    y.yield_(a);
                    let next = a + b;
                    a = b;
                    b = next;
                }
            });
            let mut last = 0;
            while let Resume::Yield(v) = gen.resume(()) {
                last = v;
            }
            assert_eq!(last, 514229);
        });
    });

    group.bench_function("stackless_fib30", |b| {
        b.iter(|| {
            let mut machine = FibMachine::new(30);
            let mut last = 0;
            while let Step::Yield(v) = machine.step() {
                last = v;
            }
            assert_eq!(last, 514229);
        });
    });

    group.finish();
}

fn bench_mailbox_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mailbox");
    for (name, mode) in [("fifo", DeliveryMode::Fifo), ("chaos", DeliveryMode::Chaos(7))] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mailbox = Mailbox::new(mode);
                for i in 0..256u32 {
                    mailbox.push(i).unwrap();
                }
                let mut count = 0;
                while mailbox.pop().is_some() {
                    count += 1;
                }
                assert_eq!(count, 256);
            });
        });
    }
    group.finish();
}

fn bench_footprint_vs_global_lock(c: &mut Criterion) {
    // Same program twice: two counters guarded by disjoint footprints
    // vs both functions touching one shared variable. The disjoint
    // version reaches more interleavings (more real concurrency); the
    // state counts quantify it.
    const DISJOINT: &str = "\
x = 0
y = 0

DEFINE bumpX()
    EXC_ACC
        x = x + 1
    END_EXC_ACC
ENDDEF

DEFINE bumpY()
    EXC_ACC
        y = y + 1
    END_EXC_ACC
ENDDEF

PARA
    bumpX()
    bumpY()
ENDPARA
";
    const OVERLAPPING: &str = "\
x = 0

DEFINE bumpA()
    EXC_ACC
        x = x + 1
    END_EXC_ACC
ENDDEF

DEFINE bumpB()
    EXC_ACC
        x = x + 1
    END_EXC_ACC
ENDDEF

PARA
    bumpA()
    bumpB()
ENDPARA
";
    let mut group = c.benchmark_group("ablation_exc_acc_scope");
    for (name, source) in [("disjoint_footprints", DISJOINT), ("overlapping", OVERLAPPING)] {
        let interp = Interp::from_source(source).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let set = Explorer::new(&interp).terminals().unwrap();
                assert!(!set.has_deadlock());
                set.stats.states_visited
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_coroutine_flavours,
    bench_mailbox_modes,
    bench_footprint_vs_global_lock
);
criterion_main!(benches);
