//! Parallel-explorer scaling: serial vs N-worker throughput on the
//! two workloads the ISSUE calls out — the message-passing bridge's
//! full reduced space (~64k states, the largest exhaustive run in the
//! repo) and the naive dining philosophers deadlock hunt.
//!
//! Before the timed groups, a one-shot scaling report runs each
//! configuration once, prints states/second and speedup, and asserts
//! two things: (1) every parallel run reproduces the serial terminal
//! set exactly (the bench doubles as one more differential), and
//! (2) on a machine with at least 4 cores, 4 workers deliver at least
//! a 2x wall-clock speedup on the bridge sweep. The speedup floor is
//! skipped — loudly — on smaller machines, where workers time-slice a
//! single core and no speedup is physically available.

use concur_conformance::models::DINING_NAIVE;
use concur_exec::explore::{Explorer, Limits};
use concur_exec::par::ParExplorer;
use concur_exec::Interp;
use concur_study::bridge::BRIDGE_MESSAGE_PASSING;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

const WORKER_POINTS: [usize; 3] = [2, 4, 8];

fn mp_limits() -> Limits {
    Limits { max_states: 2_000_000, max_depth: 50_000, max_setup_states: 4096 }
}

fn cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn states_per_sec(states: usize, wall: Duration) -> f64 {
    states as f64 / wall.as_secs_f64().max(1e-9)
}

/// One-shot scaling table; printed per run and mirrored in
/// EXPERIMENTS.md.
fn report_parallel_scaling() {
    let interp = Interp::from_source(BRIDGE_MESSAGE_PASSING).unwrap();
    let begin = Instant::now();
    let serial = Explorer::with_limits(&interp, mp_limits()).with_threads(1).terminals().unwrap();
    let serial_wall = begin.elapsed();
    assert!(!serial.stats.truncated, "mp-bridge serial sweep should be complete");
    println!(
        "par-scaling/mp_bridge/serial: {} states in {serial_wall:?} ({:.0} states/s)",
        serial.stats.states_visited,
        states_per_sec(serial.stats.states_visited, serial_wall),
    );

    for workers in WORKER_POINTS {
        let begin = Instant::now();
        let par =
            ParExplorer::with_limits(&interp, mp_limits()).workers(workers).terminals().unwrap();
        let wall = begin.elapsed();
        let speedup = serial_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9);
        println!(
            "par-scaling/mp_bridge/{workers}w: {} states in {wall:?} ({:.0} states/s, {speedup:.2}x)",
            par.stats.states_visited,
            states_per_sec(par.stats.states_visited, wall),
        );
        assert_eq!(
            par.terminals, serial.terminals,
            "{workers} workers: parallel terminal set diverged from serial"
        );
        if workers == 4 {
            if cores() >= 4 {
                assert!(
                    speedup >= 2.0,
                    "4 workers on a {}-core machine managed only {speedup:.2}x (need >= 2x)",
                    cores(),
                );
            } else {
                println!(
                    "par-scaling: SKIPPING the 2x@4-workers floor: only {} core(s) available",
                    cores(),
                );
            }
        }
    }
}

fn bench_explorer_par(c: &mut Criterion) {
    report_parallel_scaling();

    let mut group = c.benchmark_group("explorer_par");

    // The full reduced mp-bridge space is seconds per sweep; two
    // samples keep the walltime sane while still catching gross
    // regressions.
    group.sample_size(2);
    let mp_bridge = Interp::from_source(BRIDGE_MESSAGE_PASSING).unwrap();
    group.bench_function("mp_bridge_serial", |b| {
        b.iter(|| {
            let set =
                Explorer::with_limits(&mp_bridge, mp_limits()).with_threads(1).terminals().unwrap();
            assert!(!set.stats.truncated);
        });
    });
    for workers in WORKER_POINTS {
        group.bench_function(format!("mp_bridge_{workers}w"), |b| {
            b.iter(|| {
                let set = ParExplorer::with_limits(&mp_bridge, mp_limits())
                    .workers(workers)
                    .terminals()
                    .unwrap();
                assert!(!set.stats.truncated);
            });
        });
    }

    // Deadlock hunt: enumerate naive dining's terminals and demand the
    // deadlock shows up — the classic "find the bad interleaving"
    // workload, small enough for full criterion sampling.
    group.sample_size(10);
    let dining = Interp::from_source(DINING_NAIVE).unwrap();
    group.bench_function("dining_naive_hunt_serial", |b| {
        b.iter(|| {
            let set = Explorer::new(&dining).with_threads(1).terminals().unwrap();
            assert!(set.has_deadlock(), "naive dining must deadlock somewhere");
        });
    });
    group.bench_function("dining_naive_hunt_4w", |b| {
        b.iter(|| {
            let set = ParExplorer::new(&dining).workers(4).terminals().unwrap();
            assert!(set.has_deadlock(), "naive dining must deadlock somewhere");
        });
    });

    group.finish();
}

criterion_group!(benches, bench_explorer_par);
criterion_main!(benches);
