//! Synchronization-primitive microbenchmarks: our from-scratch locks
//! against `std` and `parking_lot`, plus the rwlock fairness policies
//! — the lab where students see that fairness costs throughput.

use concur_threads::{Monitor, Mutex as OurMutex, Policy, RwLock, Semaphore, SpinLock, TicketLock};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn bench_locks_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_uncontended");
    let spin = SpinLock::new(0u64);
    group.bench_function("spinlock", |b| b.iter(|| *spin.lock() += 1));
    let ticket = TicketLock::new(0u64);
    group.bench_function("ticketlock", |b| b.iter(|| *ticket.lock() += 1));
    let ours = OurMutex::new(0u64);
    group.bench_function("our_mutex", |b| b.iter(|| *ours.lock() += 1));
    let std_mutex = std::sync::Mutex::new(0u64);
    group.bench_function("std_mutex", |b| b.iter(|| *std_mutex.lock().unwrap() += 1));
    let pl = parking_lot::Mutex::new(0u64);
    group.bench_function("parking_lot_mutex", |b| b.iter(|| *pl.lock() += 1));
    group.finish();
}

fn bench_locks_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_contended_2threads");
    group.sample_size(10);

    fn contend<L: Send + Sync + 'static>(
        iters: u64,
        lock: Arc<L>,
        bump: impl Fn(&L) + Send + Sync + Copy + 'static,
    ) -> std::time::Duration {
        let l2 = Arc::clone(&lock);
        let other = std::thread::spawn(move || {
            for _ in 0..iters {
                bump(&l2);
            }
        });
        let start = std::time::Instant::now();
        for _ in 0..iters {
            bump(&lock);
        }
        other.join().unwrap();
        start.elapsed()
    }

    group.bench_function("our_mutex", |b| {
        b.iter_custom(|iters| contend(iters, Arc::new(OurMutex::new(0u64)), |l| *l.lock() += 1));
    });
    group.bench_function("std_mutex", |b| {
        b.iter_custom(|iters| {
            contend(iters, Arc::new(std::sync::Mutex::new(0u64)), |l| *l.lock().unwrap() += 1)
        });
    });
    group.bench_function("spinlock", |b| {
        b.iter_custom(|iters| contend(iters, Arc::new(SpinLock::new(0u64)), |l| *l.lock() += 1));
    });
    group.finish();
}

fn bench_monitor_and_semaphore(c: &mut Criterion) {
    let mut group = c.benchmark_group("coordination");
    let monitor = Monitor::new(0u64);
    group.bench_function("monitor_with", |b| b.iter(|| monitor.with_quiet(|v| *v += 1)));
    let semaphore = Semaphore::new(4);
    group.bench_function("semaphore_permit", |b| {
        b.iter(|| {
            let _p = semaphore.permit();
        })
    });
    group.finish();
}

fn bench_rwlock_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("rwlock_read_mostly");
    group.sample_size(10);
    for policy in [Policy::ReaderPreference, Policy::WriterPreference, Policy::Fair] {
        group.bench_function(BenchmarkId::from_parameter(format!("{policy:?}")), |b| {
            b.iter_custom(|iters| {
                let lock = Arc::new(RwLock::new(policy, 0u64));
                let l2 = Arc::clone(&lock);
                let writer = std::thread::spawn(move || {
                    for _ in 0..iters / 10 + 1 {
                        *l2.write() += 1;
                    }
                });
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    let _ = *lock.read();
                }
                let elapsed = start.elapsed();
                writer.join().unwrap();
                elapsed
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_locks_uncontended,
    bench_locks_contended,
    bench_monitor_and_semaphore,
    bench_rwlock_policies
);
criterion_main!(benches);
