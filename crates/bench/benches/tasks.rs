//! Task-runtime microbenchmarks: what one cooperative await point
//! costs through the `concur-tasks` executor, with every poll-order
//! choice routed through the decision kernel.
//!
//! Three shapes bound the runtime's overhead in the conformance
//! campaign: a yield-storm (pure scheduler traffic), a park/wake
//! pipeline (`wait_until` predicates), and channel send/recv streams
//! (the actor-flavoured idiom on the task runtime).

use concur_decide::RandomSource;
use concur_tasks::{channel, Ctx, Executor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::RefCell;
use std::rc::Rc;

/// N tasks, each yielding `rounds` times: measures pure poll-decide
/// loop cost (one kernel decision per resumption).
fn yield_storm(tasks: usize, rounds: usize) -> usize {
    let exec = Executor::new();
    for _ in 0..tasks {
        exec.spawn("spinner", move |ctx: Ctx| async move {
            for _ in 0..rounds {
                ctx.yield_now().await;
            }
        });
    }
    let report = exec.run(&mut RandomSource::new(7));
    assert!(!report.deadlocked && !report.diverged);
    report.steps
}

/// A chain of tasks each parked on its predecessor's counter: every
/// step is a park, a cross-task write, and a predicate wake.
fn wait_chain(depth: usize) -> usize {
    let exec = Executor::new();
    let cells: Vec<Rc<RefCell<usize>>> = (0..=depth).map(|_| Rc::new(RefCell::new(0))).collect();
    *cells[0].borrow_mut() = 1;
    for i in 1..=depth {
        let prev = Rc::clone(&cells[i - 1]);
        let mine = Rc::clone(&cells[i]);
        exec.spawn("link", move |ctx: Ctx| async move {
            let p = Rc::clone(&prev);
            ctx.wait_until(move || *p.borrow() > 0).await;
            *mine.borrow_mut() = *prev.borrow() + 1;
        });
    }
    let report = exec.run(&mut RandomSource::new(11));
    assert!(!report.deadlocked && !report.diverged);
    let v = *cells[depth].borrow();
    v
}

/// One producer streaming `n` messages to one consumer over the
/// unbounded FIFO channel.
fn channel_stream(n: usize) -> i64 {
    let exec = Executor::new();
    let (tx, rx) = channel::<i64>();
    let total = Rc::new(RefCell::new(0i64));
    {
        let total = Rc::clone(&total);
        exec.spawn("consumer", move |_ctx: Ctx| async move {
            while let Some(v) = rx.recv().await {
                *total.borrow_mut() += v;
            }
        });
    }
    exec.spawn("producer", move |ctx: Ctx| async move {
        for i in 0..n as i64 {
            tx.send(i);
            ctx.yield_now().await;
        }
        drop(tx);
    });
    let report = exec.run(&mut RandomSource::new(13));
    assert!(!report.deadlocked && !report.diverged);
    let out = *total.borrow();
    out
}

fn bench_tasks_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("tasks_runtime");

    for tasks in [2usize, 8] {
        group.bench_function(format!("yield_storm/{tasks}"), |b| b.iter(|| yield_storm(tasks, 64)));
    }

    group.bench_function("wait_chain_depth32", |b| {
        b.iter(|| {
            let v = wait_chain(32);
            assert_eq!(v, 33);
            v
        })
    });

    group.bench_function("channel_stream_256", |b| {
        b.iter(|| {
            let sum = channel_stream(256);
            assert_eq!(sum, 255 * 256 / 2);
            sum
        })
    });

    group.finish();
}

criterion_group!(benches, bench_tasks_runtime);
criterion_main!(benches);
