//! The classical problems under all three models — the end-to-end
//! "same problem, three implementations" comparison the course's Test
//! 2 asks for, measured instead of graded.

use concur_bench::workloads;
use concur_problems::{bounded_buffer, bridge, dining, party_matching, sleeping_barber, Paradigm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_problems(c: &mut Criterion) {
    let mut group = c.benchmark_group("problems");
    group.sample_size(10);

    for paradigm in Paradigm::ALL {
        group.bench_function(BenchmarkId::new("bridge", paradigm.to_string()), |b| {
            b.iter(|| bridge::run(paradigm, workloads::bridge_config()).expect("safe"));
        });
        group.bench_function(BenchmarkId::new("bounded_buffer", paradigm.to_string()), |b| {
            b.iter(|| bounded_buffer::run(paradigm, workloads::buffer_config()).expect("safe"));
        });
        group.bench_function(BenchmarkId::new("philosophers", paradigm.to_string()), |b| {
            b.iter(|| dining::run(paradigm, workloads::dining_config()).expect("safe"));
        });
        group.bench_function(BenchmarkId::new("barber", paradigm.to_string()), |b| {
            b.iter(|| sleeping_barber::run(paradigm, workloads::barber_config()).expect("safe"));
        });
        group.bench_function(BenchmarkId::new("party", paradigm.to_string()), |b| {
            b.iter(|| party_matching::run(paradigm, workloads::party_config()).expect("safe"));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_problems);
criterion_main!(benches);
