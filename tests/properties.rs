//! Workspace-level property tests: randomized workloads through the
//! cross-paradigm problem implementations.

use concur::problems::{bounded_buffer, bridge, sum_workers, Paradigm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sum & workers equals the sequential sum for arbitrary inputs in
    /// every paradigm.
    #[test]
    fn sum_workers_is_exact(
        values in prop::collection::vec(-1000i64..1000, 0..80),
        workers in 1usize..6,
    ) {
        let config = sum_workers::Config { values, workers };
        let expected = config.expected_sum();
        for paradigm in Paradigm::ALL {
            prop_assert_eq!(sum_workers::run(paradigm, &config), expected);
        }
    }

    /// The bounded buffer conserves items for arbitrary shapes.
    #[test]
    fn bounded_buffer_conserves(
        producers in 1usize..4,
        consumers in 1usize..3,
        items in 1usize..40,
        capacity in 1usize..6,
    ) {
        let config = bounded_buffer::Config {
            producers,
            consumers,
            items_per_producer: items,
            capacity,
        };
        for paradigm in Paradigm::ALL {
            bounded_buffer::run(paradigm, config)
                .unwrap_or_else(|v| panic!("{paradigm}: {v}"));
        }
    }

    /// The bridge stays safe for arbitrary traffic mixes and fairness
    /// settings.
    #[test]
    fn bridge_is_always_safe(
        red in 1usize..4,
        blue in 1usize..4,
        crossings in 1usize..4,
        fair in prop::option::of(1usize..3),
    ) {
        let config = bridge::Config {
            red_cars: red,
            blue_cars: blue,
            crossings_per_car: crossings,
            fair_batch: fair,
        };
        for paradigm in Paradigm::ALL {
            bridge::run(paradigm, config).unwrap_or_else(|v| panic!("{paradigm}: {v}"));
        }
    }

    /// Random pseudocode figure runs always land in the exhaustively
    /// enumerated possibility set (re-checked here through the facade
    /// with random parameters baked into a generated program).
    #[test]
    fn generated_para_prints_match_exploration(labels in prop::collection::vec("[a-z]{1,3}", 1..4)) {
        let mut source = String::from("PARA\n");
        for label in &labels {
            source.push_str(&format!("    PRINT \"{label}\"\n"));
        }
        source.push_str("ENDPARA\n");
        let possibilities = concur::exec::explore::terminal_outputs(&source).unwrap();
        let observed = concur::exec::output_set(&source, 12, 50_000).unwrap();
        for output in observed {
            prop_assert!(possibilities.contains(&output));
        }
    }
}
