//! Cross-crate integration: the full problem matrix (9 problems × 3
//! paradigms), pseudocode-vs-Rust agreement on the bridge, and the
//! end-to-end study pipeline.

use concur::problems::{
    book_inventory, bounded_buffer, bridge, dining, party_matching, readers_writers,
    sleeping_barber, sum_workers, thread_pool_arith, Paradigm,
};

#[test]
fn the_full_problem_matrix_validates() {
    for paradigm in Paradigm::ALL {
        bounded_buffer::run(paradigm, bounded_buffer::Config::default())
            .unwrap_or_else(|v| panic!("bounded_buffer/{paradigm}: {v}"));
        dining::run(paradigm, dining::Config::default())
            .unwrap_or_else(|v| panic!("dining/{paradigm}: {v}"));
        readers_writers::run(paradigm, readers_writers::Config::default())
            .unwrap_or_else(|v| panic!("readers_writers/{paradigm}: {v}"));
        party_matching::run(paradigm, party_matching::Config::default())
            .unwrap_or_else(|v| panic!("party_matching/{paradigm}: {v}"));
        sleeping_barber::run(paradigm, sleeping_barber::Config::default())
            .unwrap_or_else(|v| panic!("sleeping_barber/{paradigm}: {v}"));
        bridge::run(paradigm, bridge::Config::default())
            .unwrap_or_else(|v| panic!("bridge/{paradigm}: {v}"));
        book_inventory::run(paradigm, book_inventory::Config::default())
            .unwrap_or_else(|v| panic!("book_inventory/{paradigm}: {v}"));
    }
}

#[test]
fn computational_problems_agree_across_paradigms() {
    let sum_config = sum_workers::Config::sequential(500, 4);
    let expected = sum_config.expected_sum();
    for paradigm in Paradigm::ALL {
        assert_eq!(sum_workers::run(paradigm, &sum_config), expected, "{paradigm}");
    }
    let arith_config = thread_pool_arith::Config { tasks: 100, workers: 3 };
    let oracle = thread_pool_arith::sequential_total(arith_config);
    for paradigm in Paradigm::ALL {
        assert_eq!(thread_pool_arith::run(paradigm, arith_config), oracle, "{paradigm}");
    }
}

#[test]
fn pseudocode_bridge_and_rust_bridge_agree_on_safety() {
    // The pseudocode single-lane bridge (run under the model checker)
    // and the Rust monitor implementation of the same protocol must
    // both be deadlock-free and safe.
    use concur::exec::{Explorer, Interp};
    let interp =
        Interp::from_source(concur::study::bridge::BRIDGE_SHARED_MEMORY).expect("compiles");
    let explorer = Explorer::new(&interp);
    let terminals = explorer.terminals().expect("explores");
    assert!(!terminals.has_deadlock(), "pseudocode bridge deadlocks");
    assert!(!terminals.stats.truncated);

    let events = bridge::run(
        Paradigm::Threads,
        bridge::Config { red_cars: 2, blue_cars: 1, crossings_per_car: 1, fair_batch: None },
    )
    .expect("Rust bridge is safe");
    assert_eq!(events.len(), 6, "2 reds + 1 blue, one crossing each");
}

#[test]
fn study_pipeline_end_to_end() {
    let report = concur::study::run_study(1234);
    // Structure.
    assert_eq!(report.cohort.students.len(), 16);
    assert_eq!(report.results.scores.len(), 32);
    // The headline shapes (details are unit-tested in concur-study).
    assert!(report.table2.all_shared_memory < report.table2.all_message_passing);
    assert!(report.table2.session2_mean > report.table2.session1_mean);
}

#[test]
fn figure_programs_run_through_the_facade() {
    let outputs = concur::exec::explore::terminal_outputs(concur::exec::figures::FIG4_WAIT_NOTIFY)
        .expect("figure runs");
    assert_eq!(outputs, vec!["0"]);
}

#[test]
fn pseudocode_parser_is_reachable_from_the_facade() {
    let program = concur::pseudocode::parse("x = 1\nPRINTLN x + 1\n").expect("parses");
    assert_eq!(program.statement_count(), 2);
}
